use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use crate::{Attr, Pred, RelalgError, Relation, Result, Schema};

/// The node of a relational algebra expression.
///
/// Expressions are immutable and reference-counted ([`Expr`] wraps an
/// `Arc<ExprKind>`), so the WSA-to-RA translation can build *DAGs*: the same
/// subplan (e.g. the world table `W`) is shared by many consumers and is
/// evaluated once (the evaluator memoizes by node identity).
#[derive(Debug, PartialEq)]
pub enum ExprKind {
    /// A named base table, resolved against a [`crate::Catalog`].
    Table(String),
    /// A literal relation (e.g. the one-world table `{⟨⟩}`), shared so that
    /// evaluation returns it without copying.
    Lit(Arc<Relation>),
    /// Selection `σ_φ(e)`.
    Select(Pred, Expr),
    /// Projection `π_A(e)`.
    Project(Vec<Attr>, Expr),
    /// Generalized projection `π_{src as dst, …}(e)`; supports the Figure-6
    /// idiom `π_{D, V, B as V_B}` that copies choice attributes into world-id
    /// columns.
    ProjectAs(Vec<(Attr, Attr)>, Expr),
    /// Renaming `δ_{src→dst}(e)`.
    Rename(Vec<(Attr, Attr)>, Expr),
    /// Cartesian product `e₁ × e₂` (disjoint schemas).
    Product(Expr, Expr),
    /// Union `e₁ ∪ e₂`.
    Union(Expr, Expr),
    /// Intersection `e₁ ∩ e₂`.
    Intersect(Expr, Expr),
    /// Difference `e₁ − e₂`.
    Difference(Expr, Expr),
    /// Natural join `e₁ ⋈ e₂`.
    NaturalJoin(Expr, Expr),
    /// Theta join `e₁ ⋈_φ e₂` (disjoint schemas).
    ThetaJoin(Pred, Expr, Expr),
    /// Division `e₁ ÷ e₂`.
    Divide(Expr, Expr),
    /// Modified left outer join `e₁ =⊲⊳ e₂` (Remark 5.5).
    OuterPadJoin(Expr, Expr),
}

/// A shareable relational algebra expression.
#[derive(Clone, Debug)]
pub struct Expr(pub(crate) Arc<ExprKind>);

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}
impl Eq for Expr {}

impl Expr {
    /// Reference a base table by name.
    pub fn table(name: &str) -> Expr {
        Expr(Arc::new(ExprKind::Table(name.to_string())))
    }

    /// Embed a literal relation (owned or already shared).
    pub fn lit(rel: impl Into<Arc<Relation>>) -> Expr {
        Expr(Arc::new(ExprKind::Lit(rel.into())))
    }

    /// The node this expression points at.
    pub fn kind(&self) -> &ExprKind {
        &self.0
    }

    /// Stable identity for memoization.
    pub(crate) fn id(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    /// `σ_φ(self)`.
    pub fn select(&self, pred: Pred) -> Expr {
        Expr(Arc::new(ExprKind::Select(pred, self.clone())))
    }

    /// `π_A(self)`.
    pub fn project(&self, attrs: Vec<Attr>) -> Expr {
        Expr(Arc::new(ExprKind::Project(attrs, self.clone())))
    }

    /// `π_{src as dst}(self)`.
    pub fn project_as(&self, list: Vec<(Attr, Attr)>) -> Expr {
        Expr(Arc::new(ExprKind::ProjectAs(list, self.clone())))
    }

    /// `δ_{src→dst}(self)`.
    pub fn rename(&self, map: Vec<(Attr, Attr)>) -> Expr {
        Expr(Arc::new(ExprKind::Rename(map, self.clone())))
    }

    /// `self × other`.
    pub fn product(&self, other: &Expr) -> Expr {
        Expr(Arc::new(ExprKind::Product(self.clone(), other.clone())))
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &Expr) -> Expr {
        Expr(Arc::new(ExprKind::Union(self.clone(), other.clone())))
    }

    /// `self ∩ other`.
    pub fn intersect(&self, other: &Expr) -> Expr {
        Expr(Arc::new(ExprKind::Intersect(self.clone(), other.clone())))
    }

    /// `self − other`.
    pub fn difference(&self, other: &Expr) -> Expr {
        Expr(Arc::new(ExprKind::Difference(self.clone(), other.clone())))
    }

    /// `self ⋈ other`.
    pub fn natural_join(&self, other: &Expr) -> Expr {
        Expr(Arc::new(ExprKind::NaturalJoin(self.clone(), other.clone())))
    }

    /// `self ⋈_φ other`.
    pub fn theta_join(&self, other: &Expr, pred: Pred) -> Expr {
        Expr(Arc::new(ExprKind::ThetaJoin(
            pred,
            self.clone(),
            other.clone(),
        )))
    }

    /// `self ÷ other`.
    pub fn divide(&self, other: &Expr) -> Expr {
        Expr(Arc::new(ExprKind::Divide(self.clone(), other.clone())))
    }

    /// `self =⊲⊳ other`.
    pub fn outer_pad_join(&self, other: &Expr) -> Expr {
        Expr(Arc::new(ExprKind::OuterPadJoin(
            self.clone(),
            other.clone(),
        )))
    }

    /// Number of distinct operator nodes in the DAG (shared nodes counted
    /// once). Together with [`Expr::tree_size`] this quantifies the
    /// polynomial-size claim after Theorem 5.7.
    pub fn dag_size(&self) -> usize {
        let mut seen = HashSet::new();
        self.walk(&mut seen);
        seen.len()
    }

    fn walk(&self, seen: &mut HashSet<usize>) {
        if !seen.insert(self.id()) {
            return;
        }
        match self.kind() {
            ExprKind::Table(_) | ExprKind::Lit(_) => {}
            ExprKind::Select(_, e)
            | ExprKind::Project(_, e)
            | ExprKind::ProjectAs(_, e)
            | ExprKind::Rename(_, e) => e.walk(seen),
            ExprKind::Product(a, b)
            | ExprKind::Union(a, b)
            | ExprKind::Intersect(a, b)
            | ExprKind::Difference(a, b)
            | ExprKind::NaturalJoin(a, b)
            | ExprKind::ThetaJoin(_, a, b)
            | ExprKind::Divide(a, b)
            | ExprKind::OuterPadJoin(a, b) => {
                a.walk(seen);
                b.walk(seen);
            }
        }
    }

    /// Number of operator nodes when the DAG is expanded to a tree.
    pub fn tree_size(&self) -> usize {
        match self.kind() {
            ExprKind::Table(_) | ExprKind::Lit(_) => 1,
            ExprKind::Select(_, e)
            | ExprKind::Project(_, e)
            | ExprKind::ProjectAs(_, e)
            | ExprKind::Rename(_, e) => 1 + e.tree_size(),
            ExprKind::Product(a, b)
            | ExprKind::Union(a, b)
            | ExprKind::Intersect(a, b)
            | ExprKind::Difference(a, b)
            | ExprKind::NaturalJoin(a, b)
            | ExprKind::ThetaJoin(_, a, b)
            | ExprKind::Divide(a, b)
            | ExprKind::OuterPadJoin(a, b) => 1 + a.tree_size() + b.tree_size(),
        }
    }

    /// Static schema inference given the schemas of base tables.
    pub fn infer_schema(&self, base: &dyn Fn(&str) -> Option<Schema>) -> Result<Schema> {
        match self.kind() {
            ExprKind::Table(name) => {
                base(name).ok_or_else(|| RelalgError::UnknownTable { name: name.clone() })
            }
            ExprKind::Lit(rel) => Ok(rel.schema().clone()),
            ExprKind::Select(_, e) => e.infer_schema(base),
            ExprKind::Project(attrs, e) => {
                let s = e.infer_schema(base)?;
                for a in attrs {
                    if !s.contains(a) {
                        return Err(RelalgError::UnknownAttr {
                            attr: a.clone(),
                            schema: s,
                        });
                    }
                }
                Ok(Schema::new(attrs.clone()))
            }
            ExprKind::ProjectAs(list, e) => {
                let s = e.infer_schema(base)?;
                for (src, _) in list {
                    if !s.contains(src) {
                        return Err(RelalgError::UnknownAttr {
                            attr: src.clone(),
                            schema: s,
                        });
                    }
                }
                Schema::try_new(list.iter().map(|(_, d)| d.clone()).collect()).ok_or_else(|| {
                    RelalgError::DuplicateAttr {
                        attr: Attr::new("?"),
                    }
                })
            }
            ExprKind::Rename(map, e) => {
                let s = e.infer_schema(base)?;
                let attrs: Vec<Attr> = s
                    .attrs()
                    .iter()
                    .map(|a| {
                        map.iter()
                            .find(|(src, _)| src == a)
                            .map(|(_, d)| d.clone())
                            .unwrap_or_else(|| a.clone())
                    })
                    .collect();
                Schema::try_new(attrs).ok_or_else(|| RelalgError::DuplicateAttr {
                    attr: Attr::new("?"),
                })
            }
            ExprKind::Product(a, b) | ExprKind::ThetaJoin(_, a, b) => {
                let sa = a.infer_schema(base)?;
                let sb = b.infer_schema(base)?;
                let mut attrs = sa.attrs().to_vec();
                attrs.extend_from_slice(sb.attrs());
                Schema::try_new(attrs).ok_or(RelalgError::NotDisjoint {
                    left: sa,
                    right: sb,
                })
            }
            ExprKind::Union(a, b) | ExprKind::Intersect(a, b) | ExprKind::Difference(a, b) => {
                let sa = a.infer_schema(base)?;
                let sb = b.infer_schema(base)?;
                if !sa.same_attr_set(&sb) {
                    return Err(RelalgError::SchemaMismatch {
                        left: sa,
                        right: sb,
                    });
                }
                Ok(sa)
            }
            ExprKind::NaturalJoin(a, b) | ExprKind::OuterPadJoin(a, b) => {
                let sa = a.infer_schema(base)?;
                let sb = b.infer_schema(base)?;
                let mut attrs = sa.attrs().to_vec();
                for x in sb.attrs() {
                    if !sa.contains(x) {
                        attrs.push(x.clone());
                    }
                }
                Ok(Schema::new(attrs))
            }
            ExprKind::Divide(a, b) => {
                let sa = a.infer_schema(base)?;
                let sb = b.infer_schema(base)?;
                if !sa.contains_all(sb.attrs()) {
                    return Err(RelalgError::BadDivision {
                        left: sa,
                        right: sb,
                    });
                }
                Ok(Schema::new(sa.minus(sb.attrs())))
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn attr_list(attrs: &[Attr]) -> String {
            attrs
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(",")
        }
        fn pair_list(list: &[(Attr, Attr)], arrow: &str) -> String {
            list.iter()
                .map(|(s, d)| {
                    if s == d {
                        s.to_string()
                    } else {
                        format!("{s}{arrow}{d}")
                    }
                })
                .collect::<Vec<_>>()
                .join(",")
        }
        match self.kind() {
            ExprKind::Table(name) => write!(f, "{name}"),
            ExprKind::Lit(rel) => {
                if **rel == Relation::unit() {
                    write!(f, "{{⟨⟩}}")
                } else {
                    write!(f, "{rel:?}")
                }
            }
            ExprKind::Select(p, e) => write!(f, "σ[{p}]({e})"),
            ExprKind::Project(attrs, e) => write!(f, "π{{{}}}({e})", attr_list(attrs)),
            ExprKind::ProjectAs(list, e) => {
                write!(f, "π{{{}}}({e})", pair_list(list, " as "))
            }
            ExprKind::Rename(map, e) => write!(f, "δ{{{}}}({e})", pair_list(map, "→")),
            ExprKind::Product(a, b) => write!(f, "({a} × {b})"),
            ExprKind::Union(a, b) => write!(f, "({a} ∪ {b})"),
            ExprKind::Intersect(a, b) => write!(f, "({a} ∩ {b})"),
            ExprKind::Difference(a, b) => write!(f, "({a} − {b})"),
            ExprKind::NaturalJoin(a, b) => write!(f, "({a} ⋈ {b})"),
            ExprKind::ThetaJoin(p, a, b) => write!(f, "({a} ⋈[{p}] {b})"),
            ExprKind::Divide(a, b) => write!(f, "({a} ÷ {b})"),
            ExprKind::OuterPadJoin(a, b) => write!(f, "({a} =⊲⊳ {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{attr, attrs};

    fn base(name: &str) -> Option<Schema> {
        match name {
            "R" => Some(Schema::of(&["A", "B"])),
            "S" => Some(Schema::of(&["C", "D"])),
            _ => None,
        }
    }

    #[test]
    fn schema_inference() {
        let e = Expr::table("R")
            .project(attrs(&["A"]))
            .product(&Expr::table("S"));
        assert_eq!(e.infer_schema(&base).unwrap(), Schema::of(&["A", "C", "D"]));
    }

    #[test]
    fn schema_errors_propagate() {
        assert!(Expr::table("Z").infer_schema(&base).is_err());
        assert!(Expr::table("R")
            .project(attrs(&["Z"]))
            .infer_schema(&base)
            .is_err());
        assert!(Expr::table("R")
            .union(&Expr::table("S"))
            .infer_schema(&base)
            .is_err());
        assert!(Expr::table("R")
            .product(&Expr::table("R"))
            .infer_schema(&base)
            .is_err());
    }

    #[test]
    fn divide_schema() {
        let e = Expr::table("R").divide(&Expr::table("S").project_as(vec![(attr("C"), attr("B"))]));
        assert_eq!(e.infer_schema(&base).unwrap(), Schema::of(&["A"]));
    }

    #[test]
    fn sizes_count_sharing() {
        let shared = Expr::table("R").select(Pred::True);
        let e = shared.product(&shared.clone().project(attrs(&["A"])));
        assert_eq!(e.dag_size(), 4); // table, select, project, product
        assert_eq!(e.tree_size(), 6); // table+select duplicated in tree view
    }

    #[test]
    fn display_is_algebraic() {
        let e = Expr::table("R")
            .select(Pred::eq_const("A", 1))
            .project(attrs(&["B"]));
        assert_eq!(e.to_string(), "π{B}(σ[A=1](R))");
    }
}
