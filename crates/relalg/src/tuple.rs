use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

use crate::Value;

/// Number of values a [`Tuple`] stores inline before spilling to the heap.
/// Most relations in the paper's workloads are 1–4 columns wide (world
/// tables, flights, key/value pairs), so the common case never allocates.
pub const INLINE_TUPLE_CAP: usize = 4;

/// A tuple: one value per schema attribute, in column order.
///
/// Values are stored inline for arities up to [`INLINE_TUPLE_CAP`] and on
/// the heap above that. Since [`Value`] is `Copy` (strings are interned
/// [`crate::Sym`] handles), cloning, comparing and hashing an inline tuple
/// is pure word work — no allocation, no pointer chasing.
///
/// `Tuple` dereferences to `&[Value]`, so indexing, iteration, `len` and
/// every other slice read works as it did when `Tuple` was a `Vec<Value>`.
#[derive(Clone)]
pub struct Tuple(Repr);

#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        vals: [Value; INLINE_TUPLE_CAP],
    },
    Heap(Vec<Value>),
}

impl Tuple {
    /// The empty tuple `⟨⟩`.
    pub fn new() -> Tuple {
        Tuple(Repr::Inline {
            len: 0,
            vals: [Value::Pad; INLINE_TUPLE_CAP],
        })
    }

    /// An empty tuple with room for `n` values (heap-allocated only when
    /// `n` exceeds the inline capacity).
    pub fn with_capacity(n: usize) -> Tuple {
        if n <= INLINE_TUPLE_CAP {
            Tuple::new()
        } else {
            Tuple(Repr::Heap(Vec::with_capacity(n)))
        }
    }

    /// The values as a slice.
    pub fn as_slice(&self) -> &[Value] {
        match &self.0 {
            Repr::Inline { len, vals } => &vals[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// The values as a mutable slice (in-place updates; length is fixed).
    pub fn as_mut_slice(&mut self) -> &mut [Value] {
        match &mut self.0 {
            Repr::Inline { len, vals } => &mut vals[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Append one value, spilling to the heap past the inline capacity.
    pub fn push(&mut self, v: Value) {
        match &mut self.0 {
            Repr::Inline { len, vals } => {
                let n = *len as usize;
                if n < INLINE_TUPLE_CAP {
                    vals[n] = v;
                    *len += 1;
                } else {
                    let mut heap = Vec::with_capacity(INLINE_TUPLE_CAP * 2);
                    heap.extend_from_slice(&vals[..]);
                    heap.push(v);
                    self.0 = Repr::Heap(heap);
                }
            }
            Repr::Heap(heap) => heap.push(v),
        }
    }

    /// Append all values of a slice.
    pub fn extend_from_slice(&mut self, vs: &[Value]) {
        match &mut self.0 {
            Repr::Inline { len, vals } if *len as usize + vs.len() <= INLINE_TUPLE_CAP => {
                let n = *len as usize;
                vals[n..n + vs.len()].copy_from_slice(vs);
                *len += vs.len() as u8;
            }
            Repr::Inline { len, vals } => {
                let n = *len as usize;
                let mut heap = Vec::with_capacity(n + vs.len());
                heap.extend_from_slice(&vals[..n]);
                heap.extend_from_slice(vs);
                self.0 = Repr::Heap(heap);
            }
            Repr::Heap(heap) => heap.extend_from_slice(vs),
        }
    }

    /// Remove all values, keeping any heap capacity.
    pub fn clear(&mut self) {
        match &mut self.0 {
            Repr::Inline { len, .. } => *len = 0,
            Repr::Heap(heap) => heap.clear(),
        }
    }

    /// The concatenation `self ++ other` as a new tuple.
    pub fn concat(&self, other: &[Value]) -> Tuple {
        let mut out = Tuple::with_capacity(self.len() + other.len());
        out.extend_from_slice(self);
        out.extend_from_slice(other);
        out
    }

    /// A tuple holding `n` copies of `v`.
    pub fn filled(v: Value, n: usize) -> Tuple {
        if n <= INLINE_TUPLE_CAP {
            Tuple(Repr::Inline {
                len: n as u8,
                vals: [v; INLINE_TUPLE_CAP],
            })
        } else {
            Tuple(Repr::Heap(vec![v; n]))
        }
    }
}

impl Default for Tuple {
    fn default() -> Tuple {
        Tuple::new()
    }
}

impl Deref for Tuple {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl DerefMut for Tuple {
    fn deref_mut(&mut self) -> &mut [Value] {
        self.as_mut_slice()
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Tuple) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Tuple {}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Tuple) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Tuple) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash as a slice so inline and heap representations of the same
        // tuple hash identically.
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        if v.len() <= INLINE_TUPLE_CAP {
            let mut t = Tuple::new();
            t.extend_from_slice(&v);
            t
        } else {
            Tuple(Repr::Heap(v))
        }
    }
}

impl From<&[Value]> for Tuple {
    fn from(v: &[Value]) -> Tuple {
        let mut t = Tuple::with_capacity(v.len());
        t.extend_from_slice(v);
        t
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Tuple {
        let mut t = Tuple::new();
        for v in iter {
            t.push(v);
        }
        t
    }
}

impl Extend<Value> for Tuple {
    fn extend<I: IntoIterator<Item = Value>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl IntoIterator for Tuple {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;
    fn into_iter(self) -> Self::IntoIter {
        match self.0 {
            // The owned-iterator contract wants a Vec either way; the
            // inline copy is `INLINE_TUPLE_CAP` words.
            #[allow(clippy::unnecessary_to_owned)]
            Repr::Inline { len, vals } => vals[..len as usize].to_vec().into_iter(),
            Repr::Heap(v) => v.into_iter(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(ns: &[i64]) -> Tuple {
        ns.iter().map(|&n| Value::Int(n)).collect()
    }

    #[test]
    fn inline_until_cap_then_spills() {
        let mut t = Tuple::new();
        for i in 0..INLINE_TUPLE_CAP as i64 {
            t.push(Value::Int(i));
            assert!(matches!(t.0, Repr::Inline { .. }));
        }
        t.push(Value::Int(99));
        assert!(matches!(t.0, Repr::Heap(_)));
        assert_eq!(t.len(), INLINE_TUPLE_CAP + 1);
        assert_eq!(t[INLINE_TUPLE_CAP], Value::Int(99));
    }

    #[test]
    fn inline_and_heap_compare_equal() {
        let inline = ints(&[1, 2, 3]);
        let heap = Tuple(Repr::Heap(vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
        ]));
        assert_eq!(inline, heap);
        assert_eq!(inline.cmp(&heap), Ordering::Equal);
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        inline.hash(&mut h1);
        heap.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn slice_reads_work() {
        let t = ints(&[5, 6]);
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], Value::Int(6));
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.to_vec(), vec![Value::Int(5), Value::Int(6)]);
    }

    #[test]
    fn extend_from_slice_spills_correctly() {
        let mut t = ints(&[1, 2, 3]);
        t.extend_from_slice(&[Value::Int(4), Value::Int(5)]);
        assert_eq!(t, ints(&[1, 2, 3, 4, 5]));
    }

    #[test]
    fn concat_and_filled() {
        let t = ints(&[1]).concat(&ints(&[2, 3]));
        assert_eq!(t, ints(&[1, 2, 3]));
        assert_eq!(Tuple::filled(Value::Pad, 6).len(), 6);
        assert!(Tuple::filled(Value::Pad, 6).iter().all(|v| v.is_pad()));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(ints(&[1, 2]) < ints(&[1, 3]));
        assert!(ints(&[1]) < ints(&[1, 0]));
        assert!(ints(&[2]) > ints(&[1, 9, 9]));
    }

    #[test]
    fn mutation_through_deref_mut() {
        let mut t = ints(&[1, 2]);
        t[0] = Value::Int(7);
        assert_eq!(t, ints(&[7, 2]));
    }
}
