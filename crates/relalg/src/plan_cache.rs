//! Process-level plan/result cache for relational expressions.
//!
//! Keyed by the **canonical form** of a plan ([`crate::canon`]) plus the
//! identity of the base tables it reads, the cache returns the previously
//! computed `Arc<Relation>` for a plan that is re-evaluated against the
//! same inputs — the Figure-6 translation route re-builds and re-evaluates
//! structurally identical plans on every call, and the I-SQL interpreter
//! re-evaluates uncorrelated subqueries per row.
//!
//! **Soundness is content-addressed, not invalidation-addressed**: a hit is
//! returned only after verifying that every base table the cached plan read
//! is still the table currently registered under that name. Verification is
//! **O(1) on the hot path**: pointer equality, then the relation's
//! [`crate::Relation::epoch`] tag (equal tags imply equal content — clones
//! share their constructor's tag), with the full content comparison kept
//! only as a fallback for content-equal tables built independently (rebuilt
//! catalogs). Stale entries therefore can never serve wrong data; explicit
//! invalidation ([`clear`], or the targeted [`invalidate_tables`] used by
//! I-SQL DML) only bounds memory and keeps dead entries from occupying the
//! cache.
//!
//! The cache is **sharded 16 ways** by canonical-plan hash (the same scheme
//! as the interner sharding), so per-world fan-outs on the execution pool
//! do not serialize on a single mutex when the rewrite path is on.
//!
//! The cache — like the whole rewrite path — can be switched off with the
//! `WSDB_NO_REWRITE` environment variable (any non-empty value) for A/B
//! benchmarking, or at runtime with [`set_enabled`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::canon::CanonExpr;
use crate::{Catalog, Relation};

/// One cached evaluation: the canonical plan, the exact inputs it read, and
/// the result. Inputs are pinned, so their allocations outlive the entry.
struct Entry {
    canon: crate::Expr,
    inputs: Vec<(String, Arc<Relation>)>,
    result: Arc<Relation>,
}

#[derive(Default)]
struct Inner {
    map: HashMap<u64, Vec<Entry>>,
    entries: usize,
}

/// Number of independent cache shards, selected by canonical-plan hash.
const SHARDS: usize = 16;

/// Maximum number of cached plans per shard; exceeding it clears the shard
/// (simple and predictable — a workload that overflows this is not
/// re-evaluating the same plans anyway).
const SHARD_CAP: usize = 1024 / SHARDS;

static CACHE: [Mutex<Option<Inner>>; SHARDS] = [const { Mutex::new(None) }; SHARDS];

fn shard(hash: u64) -> &'static Mutex<Option<Inner>> {
    &CACHE[(hash as usize) % SHARDS]
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Whether the rewrite/caching execution path is on: the
/// [`crate::config::REWRITE`] toggle. `WSDB_NO_REWRITE` (non-empty) turns
/// it off; [`set_enabled`] overrides at runtime.
#[inline]
pub fn rewrite_enabled() -> bool {
    crate::config::REWRITE.enabled()
}

/// Force the rewrite path on/off for this process (benchmarks A/B the two
/// paths); `None` restores the environment-derived default.
pub fn set_enabled(on: Option<bool>) {
    crate::config::REWRITE.set(on);
}

/// Drop every cached plan (also bounds stats drift in tests). Content
/// verification makes this a memory measure, not a correctness measure.
pub fn clear() {
    for shard in &CACHE {
        let mut guard = shard.lock().unwrap_or_else(|p| p.into_inner());
        *guard = None;
    }
}

/// Drop the cached plans that read any of the named tables — the targeted
/// DML invalidation: a `Session::insert` into one relation evicts only the
/// plans over that relation, and every unrelated cached plan survives.
/// Like [`clear`], this is memory hygiene: soundness always rests on the
/// per-hit input verification (epoch tag, then content).
pub fn invalidate_tables(names: &[&str]) {
    for shard in &CACHE {
        let mut guard = shard.lock().unwrap_or_else(|p| p.into_inner());
        let Some(inner) = guard.as_mut() else {
            continue;
        };
        let mut removed = 0usize;
        inner.map.retain(|_, bucket| {
            bucket.retain(|e| {
                let dead = e.inputs.iter().any(|(n, _)| names.contains(&n.as_str()));
                removed += usize::from(dead);
                !dead
            });
            !bucket.is_empty()
        });
        inner.entries -= removed;
    }
}

/// `(hits, misses)` since process start (or the last [`reset_stats`]).
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Zero the hit/miss counters (used by `EXPLAIN` tests for stable output).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Resolve the tables a canonical plan reads against `catalog`. `None` when
/// a referenced table is missing (such plans error at evaluation and are
/// never cached).
fn resolve_inputs(canon: &CanonExpr, catalog: &Catalog) -> Option<Vec<(String, Arc<Relation>)>> {
    canon
        .tables
        .iter()
        .map(|name| {
            catalog
                .get_shared(name)
                .map(|rel| (name.clone(), Arc::clone(rel)))
        })
        .collect()
}

/// Look up a cached result for `canon` evaluated against `catalog`.
pub(crate) fn lookup(canon: &CanonExpr, catalog: &Catalog) -> Option<Arc<Relation>> {
    let inputs = resolve_inputs(canon, catalog)?;
    let guard = shard(canon.hash).lock().unwrap_or_else(|p| p.into_inner());
    let inner = guard.as_ref()?;
    let bucket = inner.map.get(&canon.hash)?;
    for entry in bucket {
        if entry.canon == canon.expr && inputs_match(&entry.inputs, &inputs) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(&entry.result));
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    None
}

/// Record a computed result. No-op when a referenced table is absent.
pub(crate) fn insert(canon: &CanonExpr, catalog: &Catalog, result: &Arc<Relation>) {
    let Some(inputs) = resolve_inputs(canon, catalog) else {
        return;
    };
    let mut guard = shard(canon.hash).lock().unwrap_or_else(|p| p.into_inner());
    let inner = guard.get_or_insert_with(Inner::default);
    if inner.entries >= SHARD_CAP {
        inner.map.clear();
        inner.entries = 0;
    }
    let bucket = inner.map.entry(canon.hash).or_default();
    if bucket
        .iter()
        .any(|e| e.canon == canon.expr && inputs_match(&e.inputs, &inputs))
    {
        return;
    }
    bucket.push(Entry {
        canon: canon.expr.clone(),
        inputs,
        result: Arc::clone(result),
    });
    inner.entries += 1;
}

/// Whether the cached inputs are the same relations the catalog holds now:
/// pointer equality, then the O(1) epoch tag (equal tags ⇒ equal content),
/// with the full value comparison only as the fallback for content-equal
/// tables built independently (rebuilt catalogs still hit).
fn inputs_match(cached: &[(String, Arc<Relation>)], current: &[(String, Arc<Relation>)]) -> bool {
    cached.len() == current.len()
        && cached
            .iter()
            .zip(current)
            .all(|((cn, cr), (xn, xr))| cn == xn && (Arc::ptr_eq(cr, xr) || cr.fast_eq(xr)))
}

/// Serializes tests (across this crate's modules) that toggle the process
/// -wide enable state or assert on cache hit behavior.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{attrs, Expr, Pred};

    fn catalog(rows: &[&[i64]]) -> Catalog {
        let mut c = Catalog::new();
        c.put("R", Relation::table(&["A", "B"], rows));
        c
    }

    #[test]
    fn hit_requires_equal_inputs() {
        let _g = test_lock();
        clear();
        set_enabled(Some(true));
        let e = Expr::table("R")
            .select(Pred::eq_const("A", 1))
            .project(attrs(&["B"]));
        let c1 = catalog(&[&[1, 2], &[3, 4]]);
        let r1 = c1.eval(&e).unwrap();
        // Equal-content catalog in a fresh allocation: hit.
        let c2 = catalog(&[&[1, 2], &[3, 4]]);
        let r2 = c2.eval(&e).unwrap();
        assert!(Arc::ptr_eq(&r1, &r2), "content-equal catalog must hit");
        // Different content: miss, different answer.
        let c3 = catalog(&[&[1, 9]]);
        let r3 = c3.eval(&e).unwrap();
        assert_ne!(r1, r3);
        set_enabled(None);
        clear();
    }

    #[test]
    fn disabled_cache_shares_nothing() {
        let _g = test_lock();
        clear();
        set_enabled(Some(false));
        let e = Expr::table("R").select(Pred::eq_const("A", 1));
        let c1 = catalog(&[&[1, 2]]);
        let r1 = c1.eval(&e).unwrap();
        let c2 = catalog(&[&[1, 2]]);
        let r2 = c2.eval(&e).unwrap();
        assert!(!Arc::ptr_eq(&r1, &r2));
        assert_eq!(r1, r2);
        set_enabled(None);
        clear();
    }

    #[test]
    fn epoch_tag_fast_path_hits_for_clones() {
        let _g = test_lock();
        clear();
        set_enabled(Some(true));
        let e = Expr::table("R").select(Pred::eq_const("A", 1));
        let c1 = catalog(&[&[1, 2], &[3, 4]]);
        let r1 = c1.eval(&e).unwrap();
        // A catalog holding a *clone* of the same relation (fresh Arc, same
        // epoch): the hit verifies on the tag, not the tuple data.
        let mut c2 = Catalog::new();
        c2.put("R", c1.get("R").unwrap().clone());
        assert!(!Arc::ptr_eq(
            c1.get_shared("R").unwrap(),
            c2.get_shared("R").unwrap()
        ));
        assert_eq!(
            c1.get("R").unwrap().epoch(),
            c2.get("R").unwrap().epoch(),
            "clones share the construction epoch"
        );
        let r2 = c2.eval(&e).unwrap();
        assert!(Arc::ptr_eq(&r1, &r2), "clone catalog must hit");
        set_enabled(None);
        clear();
    }

    #[test]
    fn invalidate_tables_is_targeted() {
        let _g = test_lock();
        clear();
        set_enabled(Some(true));
        let mut c = Catalog::new();
        c.put("R", Relation::table(&["A", "B"], &[&[1i64, 2]]));
        c.put("S", Relation::table(&["C", "D"], &[&[5i64, 6]]));
        let er = Expr::table("R").select(Pred::eq_const("A", 1));
        let es = Expr::table("S").select(Pred::eq_const("C", 5));
        let r1 = c.eval(&er).unwrap();
        let s1 = c.eval(&es).unwrap();
        reset_stats();
        invalidate_tables(&["R"]);
        // The S-plan survives (hit); the R-plan was evicted (miss).
        let s2 = c.eval(&es).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
        let r2 = c.eval(&er).unwrap();
        assert!(!Arc::ptr_eq(&r1, &r2));
        assert_eq!(*r1, *r2);
        let (hits, misses) = stats();
        assert!(hits >= 1, "S plan should hit: {hits}/{misses}");
        set_enabled(None);
        clear();
    }

    #[test]
    fn structurally_equal_plans_share_across_calls() {
        let _g = test_lock();
        clear();
        set_enabled(Some(true));
        let c = catalog(&[&[1, 2], &[2, 3]]);
        // Two separately built, structurally identical DAGs.
        let mk = || {
            Expr::table("R")
                .select(Pred::eq_const("A", 2))
                .project(attrs(&["B"]))
        };
        let r1 = c.eval(&mk()).unwrap();
        let r2 = c.eval(&mk()).unwrap();
        assert!(Arc::ptr_eq(&r1, &r2));
        set_enabled(None);
        clear();
    }
}
