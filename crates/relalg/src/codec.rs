//! Length-prefixed binary codec for relational values.
//!
//! This is the serialization substrate of the durability layer: snapshots
//! and WAL records encode through an [`Enc`] and decode through a [`Dec`].
//! The format is deliberately simple and self-contained:
//!
//! * **Varints** — unsigned LEB128 for lengths and counts, zigzag for
//!   `i64` payloads.
//! * **Interned strings** — every string is written once into a
//!   per-message *string table*; the stream stores table indices. This is
//!   the interner-aware idiom: a [`Sym`]-heavy relation (shared city
//!   names, attribute labels, …) serializes each distinct string once,
//!   and decoding re-interns through [`Sym::new`] so the restarted
//!   process shares spellings exactly like the writer did.
//! * **Relations** — schema (attribute names), tuples in the canonical
//!   sorted order, then the memoized [`RelStats`] if the writer had
//!   computed them, so a reopened database keeps warm statistics.
//!
//! Decoding is *validating*: any truncation, out-of-range table index,
//! malformed UTF-8 hiding behind a corrupted length, duplicate schema
//! attribute, or out-of-order tuple yields a [`CodecError`] rather than a
//! panic or a structurally invalid `Relation`. Epoch tags are **not**
//! round-tripped here — a decoded relation gets a fresh epoch, and the
//! durability layer preserves epoch *sharing* (which relations are the
//! same object) via its snapshot-level relation pool.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::{ColStats, RelStats, Relation, Schema, Sym, Tuple, Value};

/// Decoding failure: corrupted, truncated, or semantically invalid input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

/// Encoder: accumulates a body and a string table, then
/// [`Enc::finish`]es into one self-contained byte message
/// (`table length, table entries, body`).
#[derive(Debug, Default)]
pub struct Enc {
    body: Vec<u8>,
    table: Vec<String>,
    index: HashMap<String, u32>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.body.push(v);
    }

    /// Unsigned LEB128.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.body.push(byte);
                return;
            }
            self.body.push(byte | 0x80);
        }
    }

    /// Zigzag-encoded signed integer.
    pub fn put_i64(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Intern `s` in the message's string table and write its index.
    pub fn put_str(&mut self, s: &str) {
        let idx = match self.index.get(s) {
            Some(&i) => i,
            None => {
                let i = self.table.len() as u32;
                self.table.push(s.to_string());
                self.index.insert(s.to_string(), i);
                i
            }
        };
        self.put_varint(idx as u64);
    }

    pub fn put_value(&mut self, v: Value) {
        match v {
            Value::Pad => self.put_u8(0),
            Value::Bool(false) => self.put_u8(1),
            Value::Bool(true) => self.put_u8(2),
            Value::Int(i) => {
                self.put_u8(3);
                self.put_i64(i);
            }
            Value::Str(s) => {
                self.put_u8(4);
                self.put_str(s.as_str());
            }
        }
    }

    /// Schema, sorted tuples, and (if memoized) statistics.
    pub fn put_relation(&mut self, rel: &Relation) {
        let schema = rel.schema();
        self.put_varint(schema.arity() as u64);
        for attr in schema.attrs() {
            self.put_str(attr.name());
        }
        self.put_varint(rel.len() as u64);
        for tuple in rel.iter() {
            for i in 0..schema.arity() {
                self.put_value(tuple[i]);
            }
        }
        match rel.stats_if_computed() {
            None => self.put_u8(0),
            Some(stats) => {
                self.put_u8(1);
                self.put_varint(stats.rows);
                for col in &stats.cols {
                    self.put_varint(col.distinct);
                    self.put_opt_value(col.min);
                    self.put_opt_value(col.max);
                }
            }
        }
    }

    fn put_opt_value(&mut self, v: Option<Value>) {
        match v {
            None => self.put_u8(0),
            Some(v) => {
                self.put_u8(1);
                self.put_value(v);
            }
        }
    }

    /// Emit the finished message: string table followed by the body.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 16 * self.table.len());
        put_varint_raw(&mut out, self.table.len() as u64);
        for s in &self.table {
            put_varint_raw(&mut out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&self.body);
        out
    }
}

fn put_varint_raw(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decoder over one [`Enc::finish`]ed message. Construction parses and
/// re-interns the string table; the `get_*` methods then walk the body,
/// validating as they go.
#[derive(Debug)]
pub struct Dec<'a> {
    table: Vec<Sym>,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Result<Dec<'a>, CodecError> {
        let mut dec = Dec {
            table: Vec::new(),
            buf,
            pos: 0,
        };
        let count = dec.get_varint()?;
        if count > buf.len() as u64 {
            return err("string table count exceeds input size");
        }
        let mut table = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let len = dec.get_varint()? as usize;
            let bytes = dec.get_bytes(len)?;
            match std::str::from_utf8(bytes) {
                Ok(s) => table.push(Sym::new(s)),
                Err(_) => return err("string table entry is not UTF-8"),
            }
        }
        dec.table = table;
        Ok(dec)
    }

    /// Bytes of the body not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn get_bytes(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < len {
            return err("unexpected end of input");
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.get_bytes(1)?[0])
    }

    pub fn get_varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return err("varint overflows u64");
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return err("varint too long");
            }
        }
    }

    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        let z = self.get_varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Resolve a string-table reference.
    pub fn get_sym(&mut self) -> Result<Sym, CodecError> {
        let idx = self.get_varint()? as usize;
        match self.table.get(idx) {
            Some(&s) => Ok(s),
            None => err(format!("string table index {idx} out of range")),
        }
    }

    /// Convenience: table reference as an owned `String`.
    pub fn get_string(&mut self) -> Result<String, CodecError> {
        Ok(self.get_sym()?.as_str().to_string())
    }

    pub fn get_value(&mut self) -> Result<Value, CodecError> {
        match self.get_u8()? {
            0 => Ok(Value::Pad),
            1 => Ok(Value::Bool(false)),
            2 => Ok(Value::Bool(true)),
            3 => Ok(Value::Int(self.get_i64()?)),
            4 => Ok(Value::Str(self.get_sym()?)),
            tag => err(format!("unknown value tag {tag}")),
        }
    }

    fn get_opt_value(&mut self) -> Result<Option<Value>, CodecError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.get_value()?)),
            flag => err(format!("bad option flag {flag}")),
        }
    }

    /// Decode and validate one relation. The result carries a *fresh*
    /// epoch tag; persisted statistics are seeded into the memo.
    pub fn get_relation(&mut self) -> Result<Relation, CodecError> {
        let arity = self.get_varint()? as usize;
        if arity > u16::MAX as usize {
            return err(format!("implausible arity {arity}"));
        }
        let mut attrs = Vec::with_capacity(arity);
        for _ in 0..arity {
            attrs.push(crate::Attr::new(self.get_sym()?.as_str()));
        }
        let Some(schema) = Schema::try_new(attrs) else {
            return err("duplicate attribute in persisted schema");
        };
        let rows = self.get_varint()? as usize;
        if rows > self.remaining() {
            // Each tuple costs at least one body byte per value (arity
            // may be 0, in which case 0 or 1 rows are representable).
            if arity > 0 || rows > 1 {
                return err("row count exceeds input size");
            }
        }
        let mut tuples: Vec<Tuple> = Vec::with_capacity(rows.min(1 << 20));
        for _ in 0..rows {
            let mut vals = Vec::with_capacity(arity);
            for _ in 0..arity {
                vals.push(self.get_value()?);
            }
            tuples.push(vals.into_iter().collect());
        }
        if !tuples.windows(2).all(|w| w[0] < w[1]) {
            return err("persisted tuples are not strictly sorted");
        }
        let rel = Relation::from_sorted_vec(schema, tuples);
        match self.get_u8()? {
            0 => {}
            1 => {
                let srows = self.get_varint()?;
                let mut cols = Vec::with_capacity(arity);
                for _ in 0..arity {
                    cols.push(ColStats {
                        distinct: self.get_varint()?,
                        min: self.get_opt_value()?,
                        max: self.get_opt_value()?,
                    });
                }
                if srows != rel.len() as u64 {
                    return err("persisted statistics row count mismatch");
                }
                rel.seed_stats(Arc::new(RelStats { rows: srows, cols }));
            }
            flag => return err(format!("bad stats flag {flag}")),
        }
        Ok(rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_and_zigzag_round_trip() {
        let mut enc = Enc::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            enc.put_varint(v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            enc.put_i64(v);
        }
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes).unwrap();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            assert_eq!(dec.get_varint().unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(dec.get_i64().unwrap(), v);
        }
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn string_table_dedupes() {
        let mut enc = Enc::new();
        enc.put_str("hello");
        enc.put_str("world");
        enc.put_str("hello");
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes).unwrap();
        assert_eq!(dec.get_string().unwrap(), "hello");
        assert_eq!(dec.get_string().unwrap(), "world");
        assert_eq!(dec.get_string().unwrap(), "hello");
        // "hello" appears once in the table: the three refs cost 3 bytes.
        let expected = 1 + (1 + 5) + (1 + 5) + 3;
        assert_eq!(bytes.len(), expected);
    }

    #[test]
    fn values_round_trip() {
        let vals = [
            Value::Pad,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(0),
            Value::Int(-40),
            Value::Int(i64::MAX),
            Value::str("tuesday"),
        ];
        let mut enc = Enc::new();
        for v in vals {
            enc.put_value(v);
        }
        let bytes = enc.finish();
        let mut dec = Dec::new(&bytes).unwrap();
        for v in vals {
            assert_eq!(dec.get_value().unwrap(), v);
        }
    }

    #[test]
    fn relation_round_trip_with_and_without_stats() {
        let rel = Relation::table(
            &["City", "Pop"],
            &[
                &[Value::str("berlin"), Value::Int(3)],
                &[Value::str("paris"), Value::Int(2)],
                &[Value::str("rome"), Value::Int(2)],
            ],
        );

        // Without stats: decoded relation has no memoized stats.
        let mut enc = Enc::new();
        enc.put_relation(&rel);
        let bytes = enc.finish();
        let back = Dec::new(&bytes).unwrap().get_relation().unwrap();
        assert_eq!(back, rel);
        assert!(back.stats_if_computed().is_none());

        // With stats: decoded relation carries them pre-warmed.
        let _ = rel.stats();
        let mut enc = Enc::new();
        enc.put_relation(&rel);
        let bytes = enc.finish();
        let back = Dec::new(&bytes).unwrap().get_relation().unwrap();
        assert_eq!(back, rel);
        assert_eq!(back.stats_if_computed(), Some(rel.stats()));
        // Fresh epoch, not the writer's.
        assert_ne!(back.epoch(), rel.epoch());
    }

    #[test]
    fn corrupted_inputs_are_rejected_not_panicking() {
        let rel = Relation::table(&["A"], &[&[1i64], &[2], &[3]]);
        let _ = rel.stats();
        let mut enc = Enc::new();
        enc.put_relation(&rel);
        let bytes = enc.finish();

        // Every truncation either fails cleanly or (if it cuts exactly at
        // the stats boundary) never panics.
        for cut in 0..bytes.len() {
            let mut dec = match Dec::new(&bytes[..cut]) {
                Ok(d) => d,
                Err(_) => continue,
            };
            let _ = dec.get_relation();
        }
        // Every single-byte corruption is rejected or yields a valid
        // relation (e.g. a flipped payload value) — never a panic.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xFF;
            if let Ok(mut dec) = Dec::new(&corrupt) {
                let _ = dec.get_relation();
            }
        }
    }

    #[test]
    fn unsorted_tuples_rejected() {
        // Hand-build a message with out-of-order tuples.
        let mut enc = Enc::new();
        enc.put_varint(1); // arity
        enc.put_str("A");
        enc.put_varint(2); // rows
        enc.put_value(Value::Int(5));
        enc.put_value(Value::Int(1));
        enc.put_u8(0); // no stats
        let bytes = enc.finish();
        let e = Dec::new(&bytes).unwrap().get_relation().unwrap_err();
        assert!(e.0.contains("sorted"), "{e}");
    }

    #[test]
    fn duplicate_attributes_rejected() {
        let mut enc = Enc::new();
        enc.put_varint(2);
        enc.put_str("A");
        enc.put_str("A");
        enc.put_varint(0);
        enc.put_u8(0);
        let bytes = enc.finish();
        assert!(Dec::new(&bytes).unwrap().get_relation().is_err());
    }
}
