//! A small algebraic simplifier for relational expressions.
//!
//! The Section-5.3 optimized translation produces plans that are correct but
//! syntactically noisy (chains of generalized projections that copy choice
//! attributes into world-id columns). These rewrites normalize such plans so
//! that, e.g., the trip-planning query of Example 5.8 prints literally as
//! `π{Arr,Dep}(HFlights) ÷ π{Dep}(HFlights)`.
//!
//! All rules are semantics-preserving for set-semantics relations:
//!
//! * `σ_true(e) → e`
//! * projection/generalized-projection chain fusion
//! * `e × {⟨⟩} → e` and `{⟨⟩} × e → e` (unit world table elimination)
//! * renaming elimination across `÷` when the renamed columns are divided
//!   away on both sides
//! * all-identity generalized projections become plain projections, and
//!   full-schema identity projections disappear

use crate::{Attr, Expr, ExprKind, Pred, Relation, Result, Schema};

/// Simplify `expr` to a fixpoint. `base` supplies base-table schemas (needed
/// to recognize identity projections).
pub fn simplify(expr: &Expr, base: &dyn Fn(&str) -> Option<Schema>) -> Result<Expr> {
    let mut cur = expr.clone();
    for _ in 0..64 {
        let next = pass(&cur, base)?;
        if next == cur {
            return Ok(next);
        }
        cur = next;
    }
    Ok(cur)
}

fn pass(expr: &Expr, base: &dyn Fn(&str) -> Option<Schema>) -> Result<Expr> {
    // Rewrite children first.
    let e = rebuild_children(expr, base)?;
    rewrite_node(&e, base)
}

fn rebuild_children(expr: &Expr, base: &dyn Fn(&str) -> Option<Schema>) -> Result<Expr> {
    Ok(match expr.kind() {
        ExprKind::Table(_) | ExprKind::Lit(_) => expr.clone(),
        ExprKind::Select(p, e) => pass(e, base)?.select(p.clone()),
        ExprKind::Project(attrs, e) => pass(e, base)?.project(attrs.clone()),
        ExprKind::ProjectAs(list, e) => pass(e, base)?.project_as(list.clone()),
        ExprKind::Rename(map, e) => pass(e, base)?.rename(map.clone()),
        ExprKind::Product(a, b) => pass(a, base)?.product(&pass(b, base)?),
        ExprKind::Union(a, b) => pass(a, base)?.union(&pass(b, base)?),
        ExprKind::Intersect(a, b) => pass(a, base)?.intersect(&pass(b, base)?),
        ExprKind::Difference(a, b) => pass(a, base)?.difference(&pass(b, base)?),
        ExprKind::NaturalJoin(a, b) => pass(a, base)?.natural_join(&pass(b, base)?),
        ExprKind::ThetaJoin(p, a, b) => pass(a, base)?.theta_join(&pass(b, base)?, p.clone()),
        ExprKind::Divide(a, b) => pass(a, base)?.divide(&pass(b, base)?),
        ExprKind::OuterPadJoin(a, b) => pass(a, base)?.outer_pad_join(&pass(b, base)?),
    })
}

fn is_unit(e: &Expr) -> bool {
    matches!(e.kind(), ExprKind::Lit(rel) if **rel == Relation::unit())
}

/// View a node as a generalized projection list, if it is one.
fn as_projection(e: &Expr) -> Option<(Vec<(Attr, Attr)>, Expr)> {
    match e.kind() {
        ExprKind::Project(attrs, inner) => Some((
            attrs.iter().map(|a| (a.clone(), a.clone())).collect(),
            inner.clone(),
        )),
        ExprKind::ProjectAs(list, inner) => Some((list.clone(), inner.clone())),
        _ => None,
    }
}

fn projection_expr(list: Vec<(Attr, Attr)>, inner: Expr) -> Expr {
    if list.iter().all(|(s, d)| s == d) {
        inner.project(list.into_iter().map(|(_, d)| d).collect())
    } else {
        inner.project_as(list)
    }
}

fn rewrite_node(expr: &Expr, base: &dyn Fn(&str) -> Option<Schema>) -> Result<Expr> {
    // σ_true(e) → e
    if let ExprKind::Select(Pred::True, e) = expr.kind() {
        return Ok(e.clone());
    }

    // e × {⟨⟩} → e ; {⟨⟩} × e → e ; same for natural join with unit.
    match expr.kind() {
        ExprKind::Product(a, b) | ExprKind::NaturalJoin(a, b) => {
            if is_unit(a) {
                return Ok(b.clone());
            }
            if is_unit(b) {
                return Ok(a.clone());
            }
        }
        _ => {}
    }

    // Projection chain fusion: π_L1(π_L2(e)) → π_{L1 ∘ L2}(e).
    if let Some((l1, inner)) = as_projection(expr) {
        if let Some((l2, inner2)) = as_projection(&inner) {
            let mut fused = Vec::with_capacity(l1.len());
            let mut ok = true;
            for (s1, d1) in &l1 {
                match l2.iter().find(|(_, d2)| d2 == s1) {
                    Some((s2, _)) => fused.push((s2.clone(), d1.clone())),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                return Ok(projection_expr(fused, inner2));
            }
        }

        // Identity projection over a known schema disappears.
        if let Ok(schema) = inner.infer_schema(base) {
            let identical = l1.len() == schema.arity()
                && l1
                    .iter()
                    .zip(schema.attrs())
                    .all(|((s, d), a)| s == d && s == a);
            if identical {
                return Ok(inner);
            }
        }

        // Normalize all-identity ProjectAs to Project.
        if matches!(expr.kind(), ExprKind::ProjectAs(_, _)) && l1.iter().all(|(s, d)| s == d) {
            return Ok(inner.project(l1.into_iter().map(|(_, d)| d).collect()));
        }
    }

    // Renaming elimination across division: if both operands are projections
    // from which the divisor renames column `s` to `d` consistently, and `d`
    // is divided away, the rename is unobservable.
    if let ExprKind::Divide(l, r) = expr.kind() {
        if let (Some((l1, e1)), Some((l2, e2))) = (as_projection(l), as_projection(r)) {
            let renames: Vec<(Attr, Attr)> = l2.iter().filter(|(s, d)| s != d).cloned().collect();
            if !renames.is_empty() && renames.iter().all(|p| l1.contains(p)) {
                // Substituting d→s must not create duplicate outputs.
                let sub = |list: &[(Attr, Attr)]| -> Option<Vec<(Attr, Attr)>> {
                    let new: Vec<(Attr, Attr)> = list
                        .iter()
                        .map(|(s, d)| {
                            let nd = renames
                                .iter()
                                .find(|(_, rd)| rd == d)
                                .map(|(rs, _)| rs.clone())
                                .unwrap_or_else(|| d.clone());
                            (s.clone(), nd)
                        })
                        .collect();
                    let names: Vec<&Attr> = new.iter().map(|(_, d)| d).collect();
                    for (i, n) in names.iter().enumerate() {
                        if names[..i].contains(n) {
                            return None;
                        }
                    }
                    Some(new)
                };
                if let (Some(n1), Some(n2)) = (sub(&l1), sub(&l2)) {
                    return Ok(projection_expr(n1, e1).divide(&projection_expr(n2, e2)));
                }
            }
        }
    }

    // Projection over a renaming fuses: the projection re-sources its
    // columns through the rename map. Sound only when the rename itself is
    // valid — fusing must not turn an erroring plan into a succeeding one,
    // so the rename's output schema is checked for duplicates first (a
    // rename target colliding with an existing attribute, or a projected
    // column renamed away, keeps the original erroring plan).
    if let Some((l1, inner)) = as_projection(expr) {
        if let ExprKind::Rename(map, e2) = inner.kind() {
            let rename_is_valid = e2.infer_schema(base).is_ok_and(|s2| {
                let renamed: Vec<Attr> = s2
                    .attrs()
                    .iter()
                    .map(|a| {
                        map.iter()
                            .find(|(src, _)| src == a)
                            .map(|(_, d)| d.clone())
                            .unwrap_or_else(|| a.clone())
                    })
                    .collect();
                Schema::try_new(renamed).is_some()
            });
            if rename_is_valid {
                let fused: Option<Vec<(Attr, Attr)>> = l1
                    .iter()
                    .map(|(s, d)| {
                        if let Some((orig, _)) = map.iter().find(|(_, md)| md == s) {
                            Some((orig.clone(), d.clone()))
                        } else if map.iter().any(|(ms, _)| ms == s) {
                            None // `s` was renamed away; the projection is invalid.
                        } else {
                            Some((s.clone(), d.clone()))
                        }
                    })
                    .collect();
                if let Some(list) = fused {
                    return Ok(projection_expr(list, e2.clone()));
                }
            }
        }
    }

    // Renaming over a projection fuses into the projection's output names,
    // when every renamed column is actually produced.
    if let ExprKind::Rename(map, e) = expr.kind() {
        if let Some((l1, inner)) = as_projection(e) {
            if map.iter().all(|(s, _)| l1.iter().any(|(_, d)| d == s)) {
                let list: Vec<(Attr, Attr)> = l1
                    .iter()
                    .map(|(s, d)| {
                        let nd = map
                            .iter()
                            .find(|(ms, _)| ms == d)
                            .map(|(_, md)| md.clone())
                            .unwrap_or_else(|| d.clone());
                        (s.clone(), nd)
                    })
                    .collect();
                return Ok(projection_expr(list, inner));
            }
        }

        // A renaming of quotient attributes pushes into the dividend:
        // division groups on the divisor's attributes, which the rename
        // must not touch (sources or targets) for the push to commute.
        if let ExprKind::Divide(a, b) = e.kind() {
            if let Ok(bs) = b.infer_schema(base) {
                let clear = map.iter().all(|(s, d)| !bs.contains(s) && !bs.contains(d));
                if clear {
                    return Ok(a.rename(map.clone()).divide(b));
                }
            }
        }

        if map.iter().all(|(s, d)| s == d) {
            // Empty rename map disappears; rename of nothing-changed
            // disappears.
            return Ok(e.clone());
        }
    }

    Ok(expr.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{attr, attrs, Catalog};

    fn base(name: &str) -> Option<Schema> {
        match name {
            "HFlights" => Some(Schema::of(&["Dep", "Arr"])),
            _ => None,
        }
    }

    #[test]
    fn select_true_removed() {
        let e = Expr::table("HFlights").select(Pred::True);
        assert_eq!(simplify(&e, &base).unwrap(), Expr::table("HFlights"));
    }

    #[test]
    fn unit_product_removed() {
        let e = Expr::lit(Relation::unit()).product(&Expr::table("HFlights"));
        assert_eq!(simplify(&e, &base).unwrap(), Expr::table("HFlights"));
    }

    #[test]
    fn projection_chains_fuse() {
        let e = Expr::table("HFlights")
            .project_as(vec![
                (attr("Dep"), attr("Dep")),
                (attr("Arr"), attr("Arr")),
                (attr("Dep"), attr("V.Dep")),
            ])
            .project(attrs(&["Arr", "V.Dep"]));
        let s = simplify(&e, &base).unwrap();
        assert_eq!(
            s,
            Expr::table("HFlights").project_as(vec![
                (attr("Arr"), attr("Arr")),
                (attr("Dep"), attr("V.Dep"))
            ])
        );
    }

    #[test]
    fn identity_projection_removed() {
        let e = Expr::table("HFlights").project(attrs(&["Dep", "Arr"]));
        assert_eq!(simplify(&e, &base).unwrap(), Expr::table("HFlights"));
    }

    #[test]
    fn example_5_8_shape() {
        // What the optimized translation produces for
        // cert(π_Arr(χ_Dep(HFlights))) before cleanup …
        let hf = Expr::table("HFlights");
        let with_id = hf.project_as(vec![
            (attr("Dep"), attr("Dep")),
            (attr("Arr"), attr("Arr")),
            (attr("Dep"), attr("#1.Dep")),
        ]);
        let ans = with_id.project(attrs(&["Arr", "#1.Dep"]));
        let dom = hf.project_as(vec![(attr("Dep"), attr("#1.Dep"))]);
        let e = ans.divide(&dom);

        // … simplifies to the paper's π{Arr,Dep}(HFlights) ÷ π{Dep}(HFlights).
        let s = simplify(&e, &base).unwrap();
        let target = hf
            .project(attrs(&["Arr", "Dep"]))
            .divide(&hf.project(attrs(&["Dep"])));
        assert_eq!(s, target);
        assert_eq!(s.to_string(), "(π{Arr,Dep}(HFlights) ÷ π{Dep}(HFlights))");
    }

    #[test]
    fn qualification_renames_collapse_to_the_paper_plan() {
        // The I-SQL compiler qualifies columns (`δ{Dep→H.Dep,…}`) and
        // renames the output back to bare names; the fusion rules must
        // recover Example 5.8's clean division plan.
        let hf = Expr::table("HFlights");
        let q = hf.rename(vec![
            (attr("Dep"), attr("H.Dep")),
            (attr("Arr"), attr("H.Arr")),
        ]);
        let plan = q
            .project(attrs(&["H.Arr", "H.Dep"]))
            .divide(&q.project_as(vec![(attr("H.Dep"), attr("H.Dep"))]))
            .rename(vec![(attr("H.Arr"), attr("Arr"))]);
        let s = simplify(&plan, &base).unwrap();
        assert_eq!(s.to_string(), "(π{Arr,Dep}(HFlights) ÷ π{Dep}(HFlights))");
    }

    #[test]
    fn project_over_colliding_rename_keeps_erroring() {
        // π{B}(δ{A→B}(HFlights-like R with columns A,B)): the rename target
        // collides with the existing B, so the plan is invalid — fusion
        // must not quietly produce the valid π{A as B}(R).
        let base2 =
            |name: &str| -> Option<Schema> { (name == "R").then(|| Schema::of(&["A", "B"])) };
        let bad = Expr::table("R")
            .rename(vec![(attr("A"), attr("B"))])
            .project(attrs(&["B"]));
        let s = simplify(&bad, &base2).unwrap();
        let mut c = Catalog::new();
        c.put("R", Relation::table(&["A", "B"], &[&[1i64, 2]]));
        assert!(c.eval(&s).is_err());
    }

    #[test]
    fn project_over_renamed_away_column_keeps_erroring() {
        // π{Dep}(δ{Dep→X}(HFlights)) is invalid (Dep no longer exists);
        // fusion must not quietly turn it into a valid plan.
        let bad = Expr::table("HFlights")
            .rename(vec![(attr("Dep"), attr("X"))])
            .project(attrs(&["Dep"]));
        let s = simplify(&bad, &base).unwrap();
        let mut c = Catalog::new();
        c.put(
            "HFlights",
            Relation::table(&["Dep", "Arr"], &[&["FRA", "BCN"]]),
        );
        assert!(c.eval(&s).is_err());
    }

    #[test]
    fn simplification_preserves_semantics() {
        let mut c = Catalog::new();
        c.put(
            "HFlights",
            Relation::table(
                &["Dep", "Arr"],
                &[&["FRA", "BCN"], &["FRA", "ATL"], &["PAR", "ATL"]],
            ),
        );
        let hf = Expr::table("HFlights");
        let noisy = hf
            .project_as(vec![
                (attr("Dep"), attr("Dep")),
                (attr("Arr"), attr("Arr")),
                (attr("Dep"), attr("#1.Dep")),
            ])
            .project(attrs(&["Arr", "#1.Dep"]))
            .divide(&hf.project_as(vec![(attr("Dep"), attr("#1.Dep"))]))
            .select(Pred::True);
        let simplified = simplify(&noisy, &|n| c.schema_of(n)).unwrap();
        assert_eq!(c.eval(&noisy).unwrap(), c.eval(&simplified).unwrap());
    }
}
