//! Per-relation statistics: row count and per-column distinct/min/max.
//!
//! Statistics are computed **lazily** on first request and memoized on the
//! relation (see [`crate::Relation::stats`]); all later reads — cost-model
//! estimates, `EXPLAIN` cardinality annotations, join-order ranking — are
//! free. Because a [`crate::Relation`] is immutable once built (the `&mut`
//! entry points stamp a fresh epoch and drop the memo), the memoized
//! statistics can never go stale.

use crate::{Schema, Tuple, Value};

/// Statistics of one column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColStats {
    /// Number of distinct values in the column.
    pub distinct: u64,
    /// Smallest value (`None` for an empty relation).
    pub min: Option<Value>,
    /// Largest value (`None` for an empty relation).
    pub max: Option<Value>,
}

/// Statistics of a whole relation: the row count plus one [`ColStats`] per
/// schema attribute, in schema order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelStats {
    /// Number of tuples.
    pub rows: u64,
    /// Per-column statistics, in schema column order.
    pub cols: Vec<ColStats>,
}

impl RelStats {
    /// Statistics of column `i` (schema position).
    pub fn col(&self, i: usize) -> Option<&ColStats> {
        self.cols.get(i)
    }

    /// Distinct count of the named attribute.
    pub fn distinct_of(&self, schema: &Schema, attr: &crate::Attr) -> Option<u64> {
        schema.index_of(attr).map(|i| self.cols[i].distinct)
    }

    /// Compute statistics over a sorted, deduplicated tuple vector.
    ///
    /// Column 0 inherits the relation's lexicographic sort order, so its
    /// distinct count is a boundary count and min/max are the first/last
    /// tuple — no extraction pass. Every other column is extracted into a
    /// transient column vector and sorted once; wide relations fan the
    /// per-column work out over the pool.
    pub(crate) fn compute(schema: &Schema, tuples: &[Tuple]) -> RelStats {
        let arity = schema.arity();
        let rows = tuples.len() as u64;
        if tuples.is_empty() || arity == 0 {
            return RelStats {
                rows,
                cols: vec![
                    ColStats {
                        distinct: 0,
                        min: None,
                        max: None,
                    };
                    arity
                ],
            };
        }
        let idx: Vec<usize> = (0..arity).collect();
        let work = tuples.len().saturating_mul(arity);
        let cols = if crate::pool::parallelize(work, crate::pool::par_min_tuples()) {
            crate::pool::par_map(&idx, |&i| col_stats(tuples, i))
        } else {
            idx.iter().map(|&i| col_stats(tuples, i)).collect()
        };
        RelStats { rows, cols }
    }
}

fn col_stats(tuples: &[Tuple], i: usize) -> ColStats {
    if i == 0 {
        // The tuple vector is sorted lexicographically: column 0 is already
        // non-decreasing.
        let mut distinct = 1u64;
        for w in tuples.windows(2) {
            if w[0][0] != w[1][0] {
                distinct += 1;
            }
        }
        return ColStats {
            distinct,
            min: Some(tuples[0][0]),
            max: Some(tuples[tuples.len() - 1][0]),
        };
    }
    let mut col: Vec<Value> = tuples.iter().map(|t| t[i]).collect();
    col.sort_unstable();
    col.dedup();
    ColStats {
        distinct: col.len() as u64,
        min: col.first().copied(),
        max: col.last().copied(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{attr, Relation};

    #[test]
    fn stats_match_a_btreeset_oracle() {
        let r = Relation::table(
            &["A", "B", "C"],
            &[
                &[1i64, 5, 9],
                &[1, 6, 9],
                &[2, 5, 9],
                &[3, 5, 8],
                &[3, 7, 9],
            ],
        );
        let s = r.stats();
        assert_eq!(s.rows, 5);
        for (i, want_distinct) in [(0usize, 3u64), (1, 3), (2, 2)] {
            let oracle: std::collections::BTreeSet<Value> = r.iter().map(|t| t[i]).collect();
            assert_eq!(s.cols[i].distinct, want_distinct);
            assert_eq!(s.cols[i].distinct, oracle.len() as u64);
            assert_eq!(s.cols[i].min, oracle.iter().next().copied());
            assert_eq!(s.cols[i].max, oracle.iter().next_back().copied());
        }
        assert_eq!(s.distinct_of(r.schema(), &attr("B")), Some(3));
        assert_eq!(s.distinct_of(r.schema(), &attr("Z")), None);
    }

    #[test]
    fn empty_relation_stats() {
        let r = Relation::empty(crate::Schema::of(&["A", "B"]));
        let s = r.stats();
        assert_eq!(s.rows, 0);
        assert_eq!(s.cols.len(), 2);
        assert_eq!(s.cols[0].distinct, 0);
        assert_eq!(s.cols[0].min, None);
    }

    #[test]
    fn nullary_relation_stats() {
        let s = Relation::unit();
        assert_eq!(s.stats().rows, 1);
        assert!(s.stats().cols.is_empty());
    }
}
