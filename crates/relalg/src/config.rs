//! Central runtime configuration for the engine's tuning knobs.
//!
//! Every execution-path switch the engine exposes follows the same
//! three-layer resolution: a **runtime override** (set programmatically by
//! benchmarks and A/B tests) wins over the **environment variable** (read
//! once per process — several of these sit on operator hot paths and
//! `env::var` takes a process-wide lock), which wins over the compiled-in
//! **default**. Before this module each switch hand-rolled that stack with
//! its own `AtomicUsize` + `OnceLock` pair; the copies had already drifted
//! in small ways (clamping, cache-reset behavior). [`Knob`] and [`Toggle`]
//! implement the stack once, and the per-switch statics below are the
//! single place a new variable is declared.
//!
//! | static | environment variable | meaning |
//! |---|---|---|
//! | [`THREADS`] | `WSDB_THREADS` | pool worker count (default: available parallelism) |
//! | [`PAR_MIN_TUPLES`] | `WSDB_PAR_MIN_TUPLES` | tuple count before chunked sorts/joins fan out |
//! | [`COLUMNAR_MIN_ROWS`] | `WSDB_COLUMNAR_MIN_ROWS` | row count before columnar kernels engage |
//! | [`REWRITE`] | `WSDB_NO_REWRITE` (non-empty disables) | rewrite/plan-cache execution path |
//! | [`COLUMNAR`] | `WSDB_NO_COLUMNAR` (non-empty disables) | columnar physical paths |
//! | [`FACTORIZE`] | `WSDB_NO_FACTORIZE` (non-empty disables) | factorized world-set execution |
//! | [`FACTORIZE_MIN_WORLDS`] | `WSDB_FACTORIZE_MIN_WORLDS` | implicit-world estimate before the factorized path engages |
//! | [`WORLDS_BUDGET`] | `WSDB_WORLDS_BUDGET` | base world-validity DNF disjunct allowance (scaled adaptively by variable count) |
//! | [`COMPACT`] | `WSDB_NO_COMPACT` (non-empty disables) | lineage/validity formula compaction |
//!
//! The long-standing public accessors (`pool::num_threads`,
//! `columnar_enabled`, `plan_cache::rewrite_enabled`, …) remain the
//! call-site API; they now delegate here.
//!
//! # Per-session overrides
//!
//! On top of the three process-wide layers sits an optional **session
//! overlay** ([`SessionConfig`]): a small table of per-connection overrides
//! that an `isql` session installs for the duration of one statement
//! ([`overlay`]) and that the execution pool carries onto its worker
//! threads. An overlay value wins over every process-wide layer; an unset
//! overlay slot falls through. The overlay is thread-local, so two
//! concurrent sessions with different settings never see each other's
//! choices. When no thread has an overlay installed the accessors pay one
//! extra relaxed load and nothing else — the process-default path the
//! benchmarks measure is unchanged.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of overlay slots (one per knob/toggle static below).
const NUM_SLOTS: usize = 9;

/// Sentinel slot for knobs/toggles that opt out of the session overlay
/// (test-local statics).
const NO_SLOT: usize = usize::MAX;

const SLOT_THREADS: usize = 0;
const SLOT_PAR_MIN_TUPLES: usize = 1;
const SLOT_COLUMNAR_MIN_ROWS: usize = 2;
const SLOT_REWRITE: usize = 3;
const SLOT_COLUMNAR: usize = 4;
const SLOT_FACTORIZE: usize = 5;
const SLOT_FACTORIZE_MIN_WORLDS: usize = 6;
const SLOT_WORLDS_BUDGET: usize = 7;
const SLOT_COMPACT: usize = 8;

/// Encoding shared by all slots: `0` = inherit the process-wide value.
/// Knob slots store the value itself; toggle slots store 1 = on, 2 = off.
type Slots = [usize; NUM_SLOTS];

const INHERIT: Slots = [0; NUM_SLOTS];

/// Threads that currently have a non-default overlay installed. The hot
/// accessors consult the thread-local table only when this is non-zero,
/// so the process-default path costs one relaxed load.
static OVERLAYS_ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static OVERLAY: Cell<Slots> = const { Cell::new(INHERIT) };
}

#[inline]
fn overlay_slot(slot: usize) -> usize {
    if slot == NO_SLOT || OVERLAYS_ACTIVE.load(Ordering::Relaxed) == 0 {
        return 0;
    }
    OVERLAY.with(|c| c.get())[slot]
}

/// Per-session overrides for the engine's tuning knobs, resolved *above*
/// the process-wide stack (override → environment → default). Carried by
/// each `isql` session, populated by `set local <knob> = <value>;`
/// statements, and installed around statement evaluation with [`overlay`].
///
/// Knob names accepted by [`SessionConfig::set`] (case-insensitive):
/// `threads`, `par_min_tuples`, `columnar_min_rows`,
/// `factorize_min_worlds`, `worlds_budget` (positive integer or
/// `default`), and the toggles `rewrite`, `columnar`, `factorize`,
/// `compact` (`on`/`off`/`true`/`false`/`1`/`0` or `default`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SessionConfig {
    slots: Slots,
}

impl SessionConfig {
    /// A config with every slot inheriting the process-wide value.
    pub fn new() -> SessionConfig {
        SessionConfig::default()
    }

    /// Whether every slot inherits (installing such a config is a no-op).
    pub fn is_default(&self) -> bool {
        self.slots == INHERIT
    }

    /// Set one knob by name. `value` is `default` to clear the override, a
    /// positive integer for the numeric knobs, or
    /// `on`/`off`/`true`/`false`/`1`/`0` for the toggles. Returns a
    /// human-readable error for unknown knobs or unparsable values.
    pub fn set(&mut self, name: &str, value: &str) -> Result<(), String> {
        let name_lc = name.to_ascii_lowercase();
        let value_lc = value.trim().to_ascii_lowercase();
        let (slot, is_toggle) = match name_lc.as_str() {
            "threads" => (SLOT_THREADS, false),
            "par_min_tuples" => (SLOT_PAR_MIN_TUPLES, false),
            "columnar_min_rows" => (SLOT_COLUMNAR_MIN_ROWS, false),
            "factorize_min_worlds" => (SLOT_FACTORIZE_MIN_WORLDS, false),
            "worlds_budget" => (SLOT_WORLDS_BUDGET, false),
            "rewrite" => (SLOT_REWRITE, true),
            "columnar" => (SLOT_COLUMNAR, true),
            "factorize" => (SLOT_FACTORIZE, true),
            "compact" => (SLOT_COMPACT, true),
            _ => {
                return Err(format!(
                    "unknown knob {name}; known: threads, par_min_tuples, \
                     columnar_min_rows, factorize_min_worlds, worlds_budget, \
                     rewrite, columnar, factorize, compact"
                ))
            }
        };
        let encoded = if value_lc == "default" {
            0
        } else if is_toggle {
            match value_lc.as_str() {
                "on" | "true" | "1" => 1,
                "off" | "false" | "0" => 2,
                _ => return Err(format!("{name} expects on/off or default, got {value}")),
            }
        } else {
            match value_lc.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    return Err(format!(
                        "{name} expects a positive integer or default, got {value}"
                    ))
                }
            }
        };
        self.slots[slot] = encoded;
        Ok(())
    }

    /// The effective value of a toggle slot under this config, given the
    /// process-wide fallback.
    fn toggle(&self, slot: usize, fallback: bool) -> bool {
        match self.slots[slot] {
            1 => true,
            2 => false,
            _ => fallback,
        }
    }

    /// Human-readable listing of the overridden slots (empty when default).
    pub fn describe(&self) -> String {
        const NAMES: [&str; NUM_SLOTS] = [
            "threads",
            "par_min_tuples",
            "columnar_min_rows",
            "rewrite",
            "columnar",
            "factorize",
            "factorize_min_worlds",
            "worlds_budget",
            "compact",
        ];
        const TOGGLES: [bool; NUM_SLOTS] = [
            false, false, false, true, true, true, false, false, true,
        ];
        let mut parts = Vec::new();
        for (i, &v) in self.slots.iter().enumerate() {
            if v == 0 {
                continue;
            }
            let rendered = if TOGGLES[i] {
                (if v == 1 { "on" } else { "off" }).to_string()
            } else {
                v.to_string()
            };
            parts.push(format!("{} = {}", NAMES[i], rendered));
        }
        parts.join(", ")
    }

    /// Effective rewrite-path state under this config.
    pub fn rewrite_enabled(&self) -> bool {
        self.toggle(SLOT_REWRITE, REWRITE.enabled())
    }

    /// Effective columnar-path state under this config.
    pub fn columnar_enabled(&self) -> bool {
        self.toggle(SLOT_COLUMNAR, COLUMNAR.enabled())
    }

    /// Effective factorized-path state under this config.
    pub fn factorize_enabled(&self) -> bool {
        self.toggle(SLOT_FACTORIZE, FACTORIZE.enabled())
    }
}

/// RAII guard returned by [`overlay`]; restores the previous overlay (and
/// the active-thread count) on drop.
pub struct OverlayGuard {
    prev: Slots,
    installed: bool,
}

impl Drop for OverlayGuard {
    fn drop(&mut self) {
        if !self.installed {
            return;
        }
        OVERLAY.with(|c| c.set(self.prev));
        if self.prev == INHERIT {
            OVERLAYS_ACTIVE.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Install `cfg` as this thread's session overlay until the returned guard
/// drops. Installing an all-default config is free (no thread-local write,
/// no counter bump). Nested installs restore the outer overlay on drop.
pub fn overlay(cfg: &SessionConfig) -> OverlayGuard {
    if cfg.is_default() {
        return OverlayGuard {
            prev: INHERIT,
            installed: false,
        };
    }
    let prev = OVERLAY.with(|c| c.replace(cfg.slots));
    if prev == INHERIT {
        OVERLAYS_ACTIVE.fetch_add(1, Ordering::SeqCst);
    }
    OverlayGuard {
        prev,
        installed: true,
    }
}

/// The overlay currently installed on this thread (all-default when none).
/// The execution pool captures this before spawning scoped workers and
/// re-installs it on each of them with [`overlay`], so per-session settings
/// follow the work across threads.
pub fn current_overlay() -> SessionConfig {
    if OVERLAYS_ACTIVE.load(Ordering::Relaxed) == 0 {
        return SessionConfig::default();
    }
    SessionConfig {
        slots: OVERLAY.with(|c| c.get()),
    }
}

/// A `usize` tuning knob: runtime override → environment variable →
/// compiled-in default. Values are clamped to a minimum of 1 (`0` is the
/// internal "no override" sentinel).
pub struct Knob {
    env_var: &'static str,
    default: fn() -> usize,
    /// Index into the session-overlay table, or [`NO_SLOT`] for knobs that
    /// have no per-session override (test-local statics).
    slot: usize,
    /// The resolved effective value; `0` means "not yet resolved". This is
    /// the hot-path cache: [`Knob::get`] sits behind every operator's
    /// parallelization gate, so after the first resolution it must cost
    /// one relaxed load (re-resolving through the `OnceLock` each call
    /// measurably slows the world-set benches).
    cached: AtomicUsize,
    /// Runtime override; `0` means "no override".
    over: AtomicUsize,
    /// Environment resolution, computed once per process.
    env: OnceLock<usize>,
}

impl Knob {
    /// Declare a knob bound to `env_var`, with `default` as the value when
    /// neither an override nor the environment provides one.
    pub const fn new(env_var: &'static str, default: fn() -> usize) -> Knob {
        Knob::with_slot(env_var, default, NO_SLOT)
    }

    /// Declare a knob that additionally honors session overlay slot `slot`.
    const fn with_slot(env_var: &'static str, default: fn() -> usize, slot: usize) -> Knob {
        Knob {
            env_var,
            default,
            slot,
            cached: AtomicUsize::new(0),
            over: AtomicUsize::new(0),
            env: OnceLock::new(),
        }
    }

    /// The effective value: the current thread's session overlay if one
    /// covers this knob, else the runtime override, else the environment
    /// variable (parsed once, values `>= 1` only), else the default.
    #[inline]
    pub fn get(&self) -> usize {
        let o = overlay_slot(self.slot);
        if o != 0 {
            return o;
        }
        let c = self.cached.load(Ordering::Relaxed);
        if c != 0 {
            return c;
        }
        self.resolve()
    }

    /// Slow path of [`Knob::get`]: resolve override → environment →
    /// default and refill the cache (racing resolvers agree on the value).
    #[cold]
    fn resolve(&self) -> usize {
        let v = self.over.load(Ordering::Relaxed);
        let v = if v != 0 {
            v
        } else {
            *self.env.get_or_init(|| {
                std::env::var(self.env_var)
                    .ok()
                    .and_then(|s| s.trim().parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(self.default)
            })
        };
        self.cached.store(v, Ordering::Relaxed);
        v
    }

    /// Install a runtime override (clamped to a minimum of 1); `None`
    /// restores the environment-derived value.
    pub fn set(&self, n: Option<usize>) {
        self.over
            .store(n.map(|x| x.max(1)).unwrap_or(0), Ordering::SeqCst);
        // Invalidate the fast-path cache; the next `get` re-resolves.
        self.cached.store(0, Ordering::SeqCst);
    }

    /// The environment variable this knob reads.
    pub fn env_var(&self) -> &'static str {
        self.env_var
    }
}

/// An on/off execution-path switch whose environment variable *disables*
/// the path when set to a non-empty value (the `WSDB_NO_*` convention):
/// runtime override → environment → enabled.
pub struct Toggle {
    env_var: &'static str,
    /// Index into the session-overlay table, or [`NO_SLOT`] for toggles
    /// that have no per-session override (test-local statics).
    slot: usize,
    /// Resolved effective state: 0 = not yet resolved, 1 = on, 2 = off.
    /// Same hot-path cache as [`Knob::cached`] — one relaxed load after
    /// the first resolution.
    cached: AtomicUsize,
    /// 0 = resolve from the environment, 1 = forced on, 2 = forced off.
    state: AtomicUsize,
    /// Environment resolution ("is the path disabled?"), computed once.
    env_disabled: OnceLock<bool>,
}

impl Toggle {
    /// Declare a toggle whose disabling variable is `env_var`.
    pub const fn new(env_var: &'static str) -> Toggle {
        Toggle::with_slot(env_var, NO_SLOT)
    }

    /// Declare a toggle that additionally honors session overlay slot
    /// `slot`.
    const fn with_slot(env_var: &'static str, slot: usize) -> Toggle {
        Toggle {
            env_var,
            slot,
            cached: AtomicUsize::new(0),
            state: AtomicUsize::new(0),
            env_disabled: OnceLock::new(),
        }
    }

    /// Whether the path is on: the current thread's session overlay wins if
    /// it covers this toggle; then a runtime override; otherwise the path
    /// is on unless the environment variable is set to a non-empty value.
    #[inline]
    pub fn enabled(&self) -> bool {
        match overlay_slot(self.slot) {
            1 => return true,
            2 => return false,
            _ => {}
        }
        match self.cached.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => self.resolve(),
        }
    }

    /// Slow path of [`Toggle::enabled`]: resolve override → environment
    /// and refill the cache (racing resolvers agree on the value).
    #[cold]
    fn resolve(&self) -> bool {
        let on = match self.state.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => !*self.env_disabled.get_or_init(|| {
                std::env::var(self.env_var)
                    .map(|v| !v.trim().is_empty())
                    .unwrap_or(false)
            }),
        };
        self.cached.store(if on { 1 } else { 2 }, Ordering::Relaxed);
        on
    }

    /// Force the path on/off for this process; `None` restores the
    /// environment-derived default.
    pub fn set(&self, on: Option<bool>) {
        self.state.store(
            match on {
                Some(true) => 1,
                Some(false) => 2,
                None => 0,
            },
            Ordering::SeqCst,
        );
        // Invalidate the fast-path cache; the next `enabled` re-resolves.
        self.cached.store(0, Ordering::SeqCst);
    }

    /// The environment variable this toggle reads.
    pub fn env_var(&self) -> &'static str {
        self.env_var
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pool worker count (`WSDB_THREADS`); see [`crate::pool::num_threads`].
pub static THREADS: Knob = Knob::with_slot("WSDB_THREADS", default_threads, SLOT_THREADS);

/// Tuple count before the chunked-sort / partitioned-join paths fan out
/// (`WSDB_PAR_MIN_TUPLES`); see [`crate::pool::par_min_tuples`].
pub static PAR_MIN_TUPLES: Knob = Knob::with_slot(
    "WSDB_PAR_MIN_TUPLES",
    || crate::pool::PAR_MIN_TUPLES,
    SLOT_PAR_MIN_TUPLES,
);

/// Row count before a columnar kernel pays for itself
/// (`WSDB_COLUMNAR_MIN_ROWS`); see [`crate::physical::columnar_min_rows`].
pub static COLUMNAR_MIN_ROWS: Knob =
    Knob::with_slot("WSDB_COLUMNAR_MIN_ROWS", || 64, SLOT_COLUMNAR_MIN_ROWS);

/// The rewrite/plan-cache execution path (`WSDB_NO_REWRITE` disables);
/// see [`crate::plan_cache::rewrite_enabled`].
pub static REWRITE: Toggle = Toggle::with_slot("WSDB_NO_REWRITE", SLOT_REWRITE);

/// The columnar physical paths (`WSDB_NO_COLUMNAR` disables); see
/// [`crate::columnar_enabled`].
pub static COLUMNAR: Toggle = Toggle::with_slot("WSDB_NO_COLUMNAR", SLOT_COLUMNAR);

/// The factorized world-set execution path (`WSDB_NO_FACTORIZE` disables):
/// whether evaluators may run the algebra directly over succinct
/// `FactoredSet` representations instead of enumerated worlds.
pub static FACTORIZE: Toggle = Toggle::with_slot("WSDB_NO_FACTORIZE", SLOT_FACTORIZE);

/// Minimum estimated implicit world count before the factorized path is
/// chosen over enumeration (`WSDB_FACTORIZE_MIN_WORLDS`). Below it,
/// enumerated evaluation is cheap and avoids the expand step entirely.
pub static FACTORIZE_MIN_WORLDS: Knob = Knob::with_slot(
    "WSDB_FACTORIZE_MIN_WORLDS",
    || 16,
    SLOT_FACTORIZE_MIN_WORLDS,
);

/// Base disjunct allowance of a world-validity DNF before the factorized
/// path declines (`WSDB_WORLDS_BUDGET`). The effective budget is adaptive:
/// the formula layer scales this base with the number of live choice
/// variables (a representation with more variables legitimately carries
/// more disjuncts), so the knob sets the *per-variable-group* allowance
/// rather than a hard cap. Runtime setter: `WORLDS_BUDGET.set(..)`, or
/// `set local worlds_budget = <n>;` per session.
pub static WORLDS_BUDGET: Knob = Knob::with_slot("WSDB_WORLDS_BUDGET", || 1024, SLOT_WORLDS_BUDGET);

/// Lineage/validity formula compaction (`WSDB_NO_COMPACT` disables):
/// DNF subsumption, single-variable disjunct merging and decode-boundary
/// variable elimination in the factorized engine. On by default; the
/// off leg exists for A/B benchmarks and debugging.
pub static COMPACT: Toggle = Toggle::with_slot("WSDB_NO_COMPACT", SLOT_COMPACT);

/// Whether factorized world-set execution is on (the [`FACTORIZE`] toggle).
pub fn factorize_enabled() -> bool {
    FACTORIZE.enabled()
}

/// Force factorized execution on/off for this process; `None` restores the
/// environment-derived default.
pub fn set_factorize_enabled(on: Option<bool>) {
    FACTORIZE.set(on);
}

/// Whether formula compaction is on (the [`COMPACT`] toggle).
pub fn compact_enabled() -> bool {
    COMPACT.enabled()
}

/// Force formula compaction on/off for this process; `None` restores the
/// environment-derived default.
pub fn set_compact_enabled(on: Option<bool>) {
    COMPACT.set(on);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_override_wins_and_clamps() {
        static K: Knob = Knob::new("WSDB_TEST_KNOB_UNSET", || 7);
        assert_eq!(K.get(), 7);
        K.set(Some(3));
        assert_eq!(K.get(), 3);
        K.set(Some(0));
        assert_eq!(K.get(), 1, "override clamps to a minimum of 1");
        K.set(None);
        assert_eq!(K.get(), 7);
        assert_eq!(K.env_var(), "WSDB_TEST_KNOB_UNSET");
    }

    #[test]
    fn toggle_override_wins() {
        static T: Toggle = Toggle::new("WSDB_TEST_TOGGLE_UNSET");
        assert!(T.enabled(), "unset environment leaves the path on");
        T.set(Some(false));
        assert!(!T.enabled());
        T.set(Some(true));
        assert!(T.enabled());
        T.set(None);
        assert!(T.enabled());
    }

    // Overlay tests use private statics wired to the real overlay slots so
    // they stay race-free against the pool tests, which mutate the real
    // `THREADS` knob concurrently in this test binary.
    static OV_KNOB: Knob = Knob::with_slot("WSDB_TEST_OV_KNOB_UNSET", || 7, SLOT_THREADS);
    static OV_TOGGLE: Toggle = Toggle::with_slot("WSDB_TEST_OV_TOGGLE_UNSET", SLOT_REWRITE);

    #[test]
    fn session_overlay_wins_and_restores() {
        let mut cfg = SessionConfig::new();
        assert!(cfg.is_default());
        cfg.set("threads", "3").unwrap();
        cfg.set("rewrite", "off").unwrap();
        {
            let _g = overlay(&cfg);
            assert_eq!(OV_KNOB.get(), 3);
            assert!(!OV_TOGGLE.enabled());
            // Unset slots fall through to the process-wide stack.
            assert!(COLUMNAR_MIN_ROWS.get() >= 1);
            // Nested overlays shadow and restore.
            let mut inner = cfg;
            inner.set("threads", "5").unwrap();
            {
                let _g2 = overlay(&inner);
                assert_eq!(OV_KNOB.get(), 5);
            }
            assert_eq!(OV_KNOB.get(), 3);
        }
        assert_eq!(OV_KNOB.get(), 7, "overlay restores the process-wide value");
        assert!(OV_TOGGLE.enabled());
    }

    #[test]
    fn session_overlay_is_thread_local() {
        let mut cfg = SessionConfig::new();
        cfg.set("threads", "42").unwrap();
        let _g = overlay(&cfg);
        assert_eq!(OV_KNOB.get(), 42);
        let other = std::thread::spawn(|| OV_KNOB.get()).join().unwrap();
        assert_eq!(other, 7, "other threads resolve the process-wide value");
    }

    #[test]
    fn session_config_set_validates() {
        let mut cfg = SessionConfig::new();
        assert!(cfg.set("no_such_knob", "1").is_err());
        assert!(cfg.set("threads", "0").is_err());
        assert!(cfg.set("threads", "abc").is_err());
        assert!(cfg.set("rewrite", "7").is_err());
        cfg.set("factorize", "off").unwrap();
        assert!(!cfg.factorize_enabled());
        assert_eq!(cfg.describe(), "factorize = off");
        cfg.set("factorize", "default").unwrap();
        assert!(cfg.is_default());
        assert_eq!(cfg.describe(), "");
    }

    #[test]
    fn current_overlay_roundtrip() {
        assert!(current_overlay().is_default());
        let mut cfg = SessionConfig::new();
        cfg.set("columnar", "off").unwrap();
        let _g = overlay(&cfg);
        let seen = current_overlay();
        assert_eq!(seen, cfg);
        assert!(!seen.columnar_enabled());
    }

    #[test]
    fn worlds_budget_and_compact_knobs() {
        // Environment-free default of the budget base.
        assert!(WORLDS_BUDGET.get() >= 1);
        let mut cfg = SessionConfig::new();
        cfg.set("worlds_budget", "4096").unwrap();
        cfg.set("compact", "off").unwrap();
        assert_eq!(cfg.describe(), "worlds_budget = 4096, compact = off");
        cfg.set("worlds_budget", "default").unwrap();
        cfg.set("compact", "default").unwrap();
        assert!(cfg.is_default());
        // Process-wide setter roundtrip (restore the env default after).
        let env_default = std::env::var_os("WSDB_NO_COMPACT").is_none_or(|v| v.is_empty());
        set_compact_enabled(Some(false));
        assert!(!compact_enabled());
        set_compact_enabled(None);
        assert_eq!(compact_enabled(), env_default);
    }

    #[test]
    fn factorize_accessors_roundtrip() {
        // The unset-override default tracks the real environment, so this
        // test stays valid under the CI `WSDB_NO_FACTORIZE=1` leg.
        let env_default = std::env::var_os("WSDB_NO_FACTORIZE").is_none_or(|v| v.is_empty());
        assert_eq!(factorize_enabled(), env_default);
        set_factorize_enabled(Some(false));
        assert!(!factorize_enabled());
        set_factorize_enabled(Some(true));
        assert!(factorize_enabled());
        set_factorize_enabled(None);
        assert_eq!(factorize_enabled(), env_default);
    }
}
