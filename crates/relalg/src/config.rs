//! Central runtime configuration for the engine's tuning knobs.
//!
//! Every execution-path switch the engine exposes follows the same
//! three-layer resolution: a **runtime override** (set programmatically by
//! benchmarks and A/B tests) wins over the **environment variable** (read
//! once per process — several of these sit on operator hot paths and
//! `env::var` takes a process-wide lock), which wins over the compiled-in
//! **default**. Before this module each switch hand-rolled that stack with
//! its own `AtomicUsize` + `OnceLock` pair; the copies had already drifted
//! in small ways (clamping, cache-reset behavior). [`Knob`] and [`Toggle`]
//! implement the stack once, and the per-switch statics below are the
//! single place a new variable is declared.
//!
//! | static | environment variable | meaning |
//! |---|---|---|
//! | [`THREADS`] | `WSDB_THREADS` | pool worker count (default: available parallelism) |
//! | [`PAR_MIN_TUPLES`] | `WSDB_PAR_MIN_TUPLES` | tuple count before chunked sorts/joins fan out |
//! | [`COLUMNAR_MIN_ROWS`] | `WSDB_COLUMNAR_MIN_ROWS` | row count before columnar kernels engage |
//! | [`REWRITE`] | `WSDB_NO_REWRITE` (non-empty disables) | rewrite/plan-cache execution path |
//! | [`COLUMNAR`] | `WSDB_NO_COLUMNAR` (non-empty disables) | columnar physical paths |
//! | [`FACTORIZE`] | `WSDB_NO_FACTORIZE` (non-empty disables) | factorized world-set execution |
//! | [`FACTORIZE_MIN_WORLDS`] | `WSDB_FACTORIZE_MIN_WORLDS` | implicit-world estimate before the factorized path engages |
//!
//! The long-standing public accessors (`pool::num_threads`,
//! `columnar_enabled`, `plan_cache::rewrite_enabled`, …) remain the
//! call-site API; they now delegate here.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A `usize` tuning knob: runtime override → environment variable →
/// compiled-in default. Values are clamped to a minimum of 1 (`0` is the
/// internal "no override" sentinel).
pub struct Knob {
    env_var: &'static str,
    default: fn() -> usize,
    /// The resolved effective value; `0` means "not yet resolved". This is
    /// the hot-path cache: [`Knob::get`] sits behind every operator's
    /// parallelization gate, so after the first resolution it must cost
    /// one relaxed load (re-resolving through the `OnceLock` each call
    /// measurably slows the world-set benches).
    cached: AtomicUsize,
    /// Runtime override; `0` means "no override".
    over: AtomicUsize,
    /// Environment resolution, computed once per process.
    env: OnceLock<usize>,
}

impl Knob {
    /// Declare a knob bound to `env_var`, with `default` as the value when
    /// neither an override nor the environment provides one.
    pub const fn new(env_var: &'static str, default: fn() -> usize) -> Knob {
        Knob {
            env_var,
            default,
            cached: AtomicUsize::new(0),
            over: AtomicUsize::new(0),
            env: OnceLock::new(),
        }
    }

    /// The effective value: the runtime override if one is set, else the
    /// environment variable (parsed once, values `>= 1` only), else the
    /// default.
    #[inline]
    pub fn get(&self) -> usize {
        let c = self.cached.load(Ordering::Relaxed);
        if c != 0 {
            return c;
        }
        self.resolve()
    }

    /// Slow path of [`Knob::get`]: resolve override → environment →
    /// default and refill the cache (racing resolvers agree on the value).
    #[cold]
    fn resolve(&self) -> usize {
        let v = self.over.load(Ordering::Relaxed);
        let v = if v != 0 {
            v
        } else {
            *self.env.get_or_init(|| {
                std::env::var(self.env_var)
                    .ok()
                    .and_then(|s| s.trim().parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(self.default)
            })
        };
        self.cached.store(v, Ordering::Relaxed);
        v
    }

    /// Install a runtime override (clamped to a minimum of 1); `None`
    /// restores the environment-derived value.
    pub fn set(&self, n: Option<usize>) {
        self.over
            .store(n.map(|x| x.max(1)).unwrap_or(0), Ordering::SeqCst);
        // Invalidate the fast-path cache; the next `get` re-resolves.
        self.cached.store(0, Ordering::SeqCst);
    }

    /// The environment variable this knob reads.
    pub fn env_var(&self) -> &'static str {
        self.env_var
    }
}

/// An on/off execution-path switch whose environment variable *disables*
/// the path when set to a non-empty value (the `WSDB_NO_*` convention):
/// runtime override → environment → enabled.
pub struct Toggle {
    env_var: &'static str,
    /// Resolved effective state: 0 = not yet resolved, 1 = on, 2 = off.
    /// Same hot-path cache as [`Knob::cached`] — one relaxed load after
    /// the first resolution.
    cached: AtomicUsize,
    /// 0 = resolve from the environment, 1 = forced on, 2 = forced off.
    state: AtomicUsize,
    /// Environment resolution ("is the path disabled?"), computed once.
    env_disabled: OnceLock<bool>,
}

impl Toggle {
    /// Declare a toggle whose disabling variable is `env_var`.
    pub const fn new(env_var: &'static str) -> Toggle {
        Toggle {
            env_var,
            cached: AtomicUsize::new(0),
            state: AtomicUsize::new(0),
            env_disabled: OnceLock::new(),
        }
    }

    /// Whether the path is on: a runtime override wins; otherwise the path
    /// is on unless the environment variable is set to a non-empty value.
    #[inline]
    pub fn enabled(&self) -> bool {
        match self.cached.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => self.resolve(),
        }
    }

    /// Slow path of [`Toggle::enabled`]: resolve override → environment
    /// and refill the cache (racing resolvers agree on the value).
    #[cold]
    fn resolve(&self) -> bool {
        let on = match self.state.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => !*self.env_disabled.get_or_init(|| {
                std::env::var(self.env_var)
                    .map(|v| !v.trim().is_empty())
                    .unwrap_or(false)
            }),
        };
        self.cached.store(if on { 1 } else { 2 }, Ordering::Relaxed);
        on
    }

    /// Force the path on/off for this process; `None` restores the
    /// environment-derived default.
    pub fn set(&self, on: Option<bool>) {
        self.state.store(
            match on {
                Some(true) => 1,
                Some(false) => 2,
                None => 0,
            },
            Ordering::SeqCst,
        );
        // Invalidate the fast-path cache; the next `enabled` re-resolves.
        self.cached.store(0, Ordering::SeqCst);
    }

    /// The environment variable this toggle reads.
    pub fn env_var(&self) -> &'static str {
        self.env_var
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pool worker count (`WSDB_THREADS`); see [`crate::pool::num_threads`].
pub static THREADS: Knob = Knob::new("WSDB_THREADS", default_threads);

/// Tuple count before the chunked-sort / partitioned-join paths fan out
/// (`WSDB_PAR_MIN_TUPLES`); see [`crate::pool::par_min_tuples`].
pub static PAR_MIN_TUPLES: Knob = Knob::new("WSDB_PAR_MIN_TUPLES", || crate::pool::PAR_MIN_TUPLES);

/// Row count before a columnar kernel pays for itself
/// (`WSDB_COLUMNAR_MIN_ROWS`); see [`crate::physical::columnar_min_rows`].
pub static COLUMNAR_MIN_ROWS: Knob = Knob::new("WSDB_COLUMNAR_MIN_ROWS", || 64);

/// The rewrite/plan-cache execution path (`WSDB_NO_REWRITE` disables);
/// see [`crate::plan_cache::rewrite_enabled`].
pub static REWRITE: Toggle = Toggle::new("WSDB_NO_REWRITE");

/// The columnar physical paths (`WSDB_NO_COLUMNAR` disables); see
/// [`crate::columnar_enabled`].
pub static COLUMNAR: Toggle = Toggle::new("WSDB_NO_COLUMNAR");

/// The factorized world-set execution path (`WSDB_NO_FACTORIZE` disables):
/// whether evaluators may run the algebra directly over succinct
/// `FactoredSet` representations instead of enumerated worlds.
pub static FACTORIZE: Toggle = Toggle::new("WSDB_NO_FACTORIZE");

/// Minimum estimated implicit world count before the factorized path is
/// chosen over enumeration (`WSDB_FACTORIZE_MIN_WORLDS`). Below it,
/// enumerated evaluation is cheap and avoids the expand step entirely.
pub static FACTORIZE_MIN_WORLDS: Knob = Knob::new("WSDB_FACTORIZE_MIN_WORLDS", || 16);

/// Whether factorized world-set execution is on (the [`FACTORIZE`] toggle).
pub fn factorize_enabled() -> bool {
    FACTORIZE.enabled()
}

/// Force factorized execution on/off for this process; `None` restores the
/// environment-derived default.
pub fn set_factorize_enabled(on: Option<bool>) {
    FACTORIZE.set(on);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_override_wins_and_clamps() {
        static K: Knob = Knob::new("WSDB_TEST_KNOB_UNSET", || 7);
        assert_eq!(K.get(), 7);
        K.set(Some(3));
        assert_eq!(K.get(), 3);
        K.set(Some(0));
        assert_eq!(K.get(), 1, "override clamps to a minimum of 1");
        K.set(None);
        assert_eq!(K.get(), 7);
        assert_eq!(K.env_var(), "WSDB_TEST_KNOB_UNSET");
    }

    #[test]
    fn toggle_override_wins() {
        static T: Toggle = Toggle::new("WSDB_TEST_TOGGLE_UNSET");
        assert!(T.enabled(), "unset environment leaves the path on");
        T.set(Some(false));
        assert!(!T.enabled());
        T.set(Some(true));
        assert!(T.enabled());
        T.set(None);
        assert!(T.enabled());
    }

    #[test]
    fn factorize_accessors_roundtrip() {
        // The unset-override default tracks the real environment, so this
        // test stays valid under the CI `WSDB_NO_FACTORIZE=1` leg.
        let env_default = std::env::var_os("WSDB_NO_FACTORIZE").is_none_or(|v| v.is_empty());
        assert_eq!(factorize_enabled(), env_default);
        set_factorize_enabled(Some(false));
        assert!(!factorize_enabled());
        set_factorize_enabled(Some(true));
        assert!(factorize_enabled());
        set_factorize_enabled(None);
        assert_eq!(factorize_enabled(), env_default);
    }
}
