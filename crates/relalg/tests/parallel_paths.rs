//! Determinism of the storage-layer parallel paths, and interner safety
//! under concurrency.
//!
//! The pool-backed operator paths — partitioned hash-join build/probe,
//! chunked builder sort + k-way merge, the fanned-out sorted streaming
//! paths (`product`, no-equi theta) — must produce byte-identical output
//! at every thread count. Inputs are datagen-seeded and large enough to
//! cross `pool::PAR_MIN_TUPLES`, so the parallel code paths actually run.

use relalg::{attr, attrs, pool, Pred, Relation, RelationBuilder, Tuple, Value};

/// Serializes tests that flip the process-wide worker count.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn at_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    pool::set_threads(n);
    let out = f();
    pool::set_threads(0);
    out
}

fn assert_thread_invariant(f: impl Fn() -> Relation) {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sequential = at_threads(1, &f);
    for threads in [2, 4, 8] {
        let parallel = at_threads(threads, &f);
        assert_eq!(
            sequential, parallel,
            "relation diverged between 1 and {threads} threads"
        );
        // `Eq` on Relation compares schema + sorted tuple vector, i.e. the
        // full byte-visible state; double-check order explicitly anyway.
        let seq: Vec<&Tuple> = sequential.iter().collect();
        let par: Vec<&Tuple> = parallel.iter().collect();
        assert_eq!(seq, par);
    }
}

const SEEDS: [u64; 3] = [5, 17, 31];

#[test]
fn partitioned_hash_join_matches_sequential() {
    for seed in SEEDS {
        // ~12k tuples on the probe side crosses PAR_MIN_TUPLES.
        let left = datagen::flights(seed, 300, 80, 40);
        let right = left
            .project(&attrs(&["Dep"]))
            .unwrap()
            .rename(&[(attr("Dep"), attr("D2"))])
            .unwrap();
        let pred = Pred::eq_attr("Dep", "D2");
        assert_thread_invariant(|| left.theta_join(&right, &pred).unwrap());

        let hubs = datagen::flights(seed ^ 0xff, 40, 80, 10);
        assert_thread_invariant(|| left.natural_join(&hubs));
    }
}

#[test]
fn theta_join_with_residual_matches_sequential() {
    for seed in SEEDS {
        let left = datagen::flights(seed, 200, 60, 50);
        let right = left
            .project(&attrs(&["Arr"]))
            .unwrap()
            .rename(&[(attr("Arr"), attr("A2"))])
            .unwrap();
        // Equi-conjunct (hash path) plus a residual comparison.
        let pred = Pred::eq_attr("Arr", "A2").and(Pred::ne_attr("Dep", "A2"));
        assert_thread_invariant(|| left.theta_join(&right, &pred).unwrap());
    }
}

#[test]
fn no_equi_theta_and_product_match_sequential() {
    for seed in SEEDS {
        let left = datagen::flights(seed, 60, 30, 2);
        let right = left
            .project(&attrs(&["Arr"]))
            .unwrap()
            .rename(&[(attr("Arr"), attr("A2"))])
            .unwrap();
        // |left| × |right| comfortably exceeds PAR_MIN_TUPLES.
        let pred = Pred::cmp(
            relalg::Operand::Attr(attr("Arr")),
            relalg::CmpOp::Lt,
            relalg::Operand::Attr(attr("A2")),
        );
        assert_thread_invariant(|| left.theta_join(&right, &pred).unwrap());
        assert_thread_invariant(|| left.product(&right).unwrap());
    }
}

#[test]
fn builder_parallel_sort_matches_sequential() {
    for seed in SEEDS {
        let base = datagen::flights(seed, 400, 100, 30);
        // Reversed + duplicated input forces real sort and dedup work.
        let rows: Vec<Tuple> = base
            .tuples()
            .iter()
            .rev()
            .chain(base.tuples().iter())
            .cloned()
            .collect();
        assert_thread_invariant(|| {
            let mut b = RelationBuilder::with_capacity(base.schema().clone(), rows.len());
            for r in &rows {
                b.push(r.clone());
            }
            b.finish()
        });
    }
}

#[test]
fn merge_rows_equals_per_row_insert() {
    for seed in SEEDS {
        let base = datagen::flights(seed, 50, 20, 10);
        let extra = datagen::flights(seed ^ 0xabcd, 30, 20, 10);
        let rows: Vec<Tuple> = extra.tuples().to_vec();

        let mut by_insert = base.clone();
        for r in &rows {
            by_insert.insert(r.clone()).unwrap();
        }
        let by_merge = base.merge_rows(rows.iter().cloned()).unwrap();
        assert_eq!(by_insert, by_merge);
    }
    // Arity violations are rejected and empty batches are no-ops.
    let base = Relation::table(&["A"], &[&[1i64]]);
    assert!(base.merge_rows(vec![Tuple::new()]).is_err());
    assert_eq!(base.merge_rows(Vec::<Tuple>::new()).unwrap(), base.clone());
}

#[test]
fn interner_concurrent_overlapping_sets_are_consistent() {
    // 8 threads intern overlapping string sets concurrently; every thread
    // must observe the same Sym for the same string, and Sym order must
    // stay exactly lexicographic regardless of interleaving.
    let words: Vec<String> = (0..800)
        .map(|i| format!("stress-{:03}-{}", i % 200, i % 7))
        .collect();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let words = words.clone();
            std::thread::spawn(move || {
                let mut syms = Vec::with_capacity(words.len());
                // Each thread walks the set from a different offset so the
                // first-interning thread differs per string.
                for i in 0..words.len() {
                    let w = &words[(i + t * 97) % words.len()];
                    syms.push((w.clone(), Value::str(w)));
                }
                syms
            })
        })
        .collect();
    let per_thread: Vec<Vec<(String, Value)>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Same string -> same interned value in every thread.
    let reference: std::collections::HashMap<&String, Value> =
        per_thread[0].iter().map(|(w, v)| (w, *v)).collect();
    for thread_syms in &per_thread {
        for (w, v) in thread_syms {
            assert_eq!(reference[w], *v, "inconsistent Sym for {w}");
        }
    }

    // Sym ordering matches string ordering exactly.
    let mut by_sym: Vec<&String> = words.iter().collect();
    let mut by_str: Vec<&String> = words.iter().collect();
    by_sym.sort_by_key(|w| Value::str(w));
    by_sym.dedup();
    by_str.sort();
    by_str.dedup();
    assert_eq!(by_sym, by_str);
}
