//! Oracle suite for the versioned, statistics-carrying storage layer and
//! the physical-operator layer built on it:
//!
//! * the **columnar projection path** (wide relations extract only the
//!   touched columns) is pinned against the row path and a
//!   `BTreeSet<Vec<Value>>` oracle, at 1 and 4 pool threads;
//! * the **vectorized selection**, **columnar join-key extraction**
//!   (natural/theta/semijoin) and **columnar grouping** (`partition_by`,
//!   `partition_by_project`, `divide`) paths are pinned the same way —
//!   row vs. columnar vs. independent semantic oracles, across thread
//!   counts and the `WSDB_NO_COLUMNAR` toggle;
//! * **per-column statistics** are pinned against per-column set oracles;
//! * the **epoch tag** semantics (clones share, constructors stamp fresh,
//!   in-place mutation bumps) and the O(1) cache verification built on it
//!   are exercised with the rewrite path on and off.

use std::collections::BTreeSet;
use std::sync::Mutex;

use proptest::prelude::*;
use relalg::{
    attr, attrs, plan_cache, pool, set_columnar_enabled, Catalog, CmpOp, Expr, Operand, Pred,
    Relation, Schema, Tuple, Value,
};

/// Serializes tests that flip process-wide toggles (worker count, columnar
/// path, rewrite enable).
static LOCK: Mutex<()> = Mutex::new(());

fn at_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    pool::set_threads(n);
    let out = f();
    pool::set_threads(0);
    out
}

/// A deterministic wide relation: `width` columns, per-column domains of
/// different sizes so distinct counts differ per column.
fn wide_rel(seed: i64, rows: usize, width: usize) -> Relation {
    let names: Vec<String> = (0..width).map(|c| format!("C{c}")).collect();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    Relation::from_rows(
        Schema::of(&name_refs),
        (0..rows as i64).map(|i| {
            (0..width as i64)
                .map(|c| Value::Int((i * (seed + c * 7) + c) % (3 + c * 5)))
                .collect::<Tuple>()
        }),
    )
    .unwrap()
}

/// The projection oracle: a raw row walk into a sorted set.
fn o_project(rel: &Relation, cols: &[&str]) -> BTreeSet<Vec<Value>> {
    let idx: Vec<usize> = cols
        .iter()
        .map(|c| rel.schema().index_of(&attr(c)).unwrap())
        .collect();
    rel.iter()
        .map(|t| idx.iter().map(|&i| t[i]).collect())
        .collect()
}

fn assert_is(rel: &Relation, oracle: &BTreeSet<Vec<Value>>, what: &str) {
    let got: Vec<Vec<Value>> = rel.iter().map(|t| t.to_vec()).collect();
    let want: Vec<Vec<Value>> = oracle.iter().cloned().collect();
    assert_eq!(got, want, "{what}: content or order diverged from oracle");
    assert!(
        rel.tuples().windows(2).all(|w| w[0] < w[1]),
        "{what}: not strictly sorted"
    );
}

#[test]
fn columnar_projection_matches_row_path_and_oracle() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let inputs = [
        datagen::lineitem_q6(7, 600, 3), // 5 columns, string + int
        datagen::lineitem_q6(23, 64, 2), // exactly at the row threshold
        wide_rel(11, 900, 8),            // 8 columns, skewed domains
        wide_rel(3, 120, 6),             // small, heavy duplication
    ];
    let col_sets: [&[&str]; 3] = [&["C1"], &["C4", "C1"], &["C2", "C0", "C5"]];
    for rel in &inputs {
        let names: Vec<&str> = if rel.schema().contains(&attr("Product")) {
            vec!["Year", "Product"]
        } else {
            vec![]
        };
        let projections: Vec<Vec<&str>> = if names.is_empty() {
            col_sets.iter().map(|s| s.to_vec()).collect()
        } else {
            vec![vec!["Quantity"], names]
        };
        for cols in projections {
            let a: Vec<relalg::Attr> = attrs(&cols);
            let oracle = o_project(rel, &cols);
            for threads in [1usize, 4] {
                let (row, col) = at_threads(threads, || {
                    set_columnar_enabled(Some(false));
                    let row = rel.project(&a).unwrap();
                    set_columnar_enabled(Some(true));
                    let col = rel.project(&a).unwrap();
                    set_columnar_enabled(None);
                    (row, col)
                });
                assert_eq!(
                    row, col,
                    "row vs columnar diverged ({cols:?}, {threads} threads)"
                );
                assert_is(&col, &oracle, &format!("{cols:?} @ {threads} threads"));
            }
        }
    }
}

#[test]
fn distinct_values_take_the_columnar_path() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let rel = wide_rel(5, 500, 7);
    let oracle = o_project(&rel, &["C3"]);
    for threads in [1usize, 4] {
        let vals = at_threads(threads, || {
            set_columnar_enabled(Some(true));
            let v = rel.distinct_values(&attrs(&["C3"])).unwrap();
            set_columnar_enabled(None);
            v
        });
        let got: Vec<Vec<Value>> = vals.iter().map(|t| t.to_vec()).collect();
        let want: Vec<Vec<Value>> = oracle.iter().cloned().collect();
        assert_eq!(got, want, "distinct_values @ {threads} threads");
    }
}

#[test]
fn stats_match_per_column_oracles() {
    for rel in [
        datagen::lineitem_q6(13, 400, 4),
        wide_rel(9, 333, 6),
        Relation::empty(Schema::of(&["A", "B"])),
    ] {
        let stats = rel.stats();
        assert_eq!(stats.rows, rel.len() as u64);
        assert_eq!(stats.cols.len(), rel.schema().arity());
        for (i, col) in stats.cols.iter().enumerate() {
            let oracle: BTreeSet<Value> = rel.iter().map(|t| t[i]).collect();
            assert_eq!(col.distinct, oracle.len() as u64, "col {i} distinct");
            assert_eq!(col.min, oracle.iter().next().copied(), "col {i} min");
            assert_eq!(col.max, oracle.iter().next_back().copied(), "col {i} max");
        }
    }
}

#[test]
fn epoch_tags_identify_content() {
    let r = wide_rel(2, 100, 5);
    // A clone is the same content: same tag, fast_eq without content walk.
    let c = r.clone();
    assert_eq!(r.epoch(), c.epoch());
    assert!(r.fast_eq(&c));
    // An independently built, content-equal relation: different tag, but
    // fast_eq still true through the content fallback.
    let rebuilt = wide_rel(2, 100, 5);
    assert_ne!(r.epoch(), rebuilt.epoch());
    assert_eq!(r, rebuilt);
    assert!(r.fast_eq(&rebuilt));
    // Every constructing operation stamps a fresh tag.
    let proj = r.project(&attrs(&["C1"])).unwrap();
    assert_ne!(proj.epoch(), r.epoch());
    let merged = r.merge_rows(vec![vec![Value::Int(-1); 5]]).unwrap();
    assert_ne!(merged.epoch(), r.epoch());
    // In-place mutation bumps the tag (the old content is gone)…
    let mut m = r.clone();
    m.insert(vec![Value::Int(-7); 5]).unwrap();
    assert_ne!(m.epoch(), r.epoch());
    assert!(!m.fast_eq(&r));
    // …but a no-op insert (duplicate) or remove (absent) keeps it.
    let mut n = r.clone();
    let first = n.iter().next().unwrap().to_vec();
    n.insert(first.clone()).unwrap();
    assert_eq!(n.epoch(), r.epoch());
    assert!(!n.remove(&[Value::Int(12345); 5]));
    assert_eq!(n.epoch(), r.epoch());
}

/// End-to-end cache verification: catalogs holding clones (same epoch) hit
/// O(1); rebuilt catalogs (fresh epochs, equal content) hit through the
/// content fallback; changed content never hits — at 1 and 4 threads, with
/// the rewrite path pinned on, and no sharing at all with it off.
#[test]
fn epoch_cache_verification_across_catalogs() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = || {
        Expr::table("L")
            .select(Pred::eq_const("C0", 1))
            .project(attrs(&["C2", "C1"]))
    };
    for threads in [1usize, 4] {
        at_threads(threads, || {
            plan_cache::set_enabled(Some(true));
            plan_cache::clear();
            let base = wide_rel(4, 300, 5);
            let mut c1 = Catalog::new();
            c1.put("L", base.clone());
            let r1 = c1.eval(&plan()).unwrap();
            // Clone catalog: epoch tags match, O(1) verified hit.
            let mut c2 = Catalog::new();
            c2.put("L", base.clone());
            let r2 = c2.eval(&plan()).unwrap();
            assert!(
                std::sync::Arc::ptr_eq(&r1, &r2),
                "clone catalog must hit ({threads} threads)"
            );
            // Rebuilt catalog: tags differ, the content fallback hits.
            let mut c3 = Catalog::new();
            c3.put("L", wide_rel(4, 300, 5));
            let r3 = c3.eval(&plan()).unwrap();
            assert!(
                std::sync::Arc::ptr_eq(&r1, &r3),
                "rebuilt catalog must hit via content fallback"
            );
            // Changed content: never served from the cache.
            let mut c4 = Catalog::new();
            c4.put("L", wide_rel(6, 300, 5));
            let r4 = c4.eval(&plan()).unwrap();
            assert!(!std::sync::Arc::ptr_eq(&r1, &r4));
            // Rewrite off: no cross-catalog sharing of any kind.
            plan_cache::set_enabled(Some(false));
            let mut c5 = Catalog::new();
            c5.put("L", base.clone());
            let r5 = c5.eval(&plan()).unwrap();
            assert!(!std::sync::Arc::ptr_eq(&r1, &r5));
            assert_eq!(*r1, *r5);
            plan_cache::set_enabled(None);
            plan_cache::clear();
        });
    }
}

/// Run `f` twice — columnar forced off, then on — restoring the
/// environment default afterwards. Both runs happen under the same thread
/// count; callers wrap with [`at_threads`].
fn row_vs_columnar<R>(f: impl Fn() -> R) -> (R, R) {
    set_columnar_enabled(Some(false));
    let row = f();
    set_columnar_enabled(Some(true));
    let col = f();
    set_columnar_enabled(None);
    (row, col)
}

/// A selection oracle evaluated directly in Rust (no `Pred` machinery).
fn o_select(rel: &Relation, keep: impl Fn(&Tuple) -> bool) -> BTreeSet<Vec<Value>> {
    rel.iter().filter(|t| keep(t)).map(|t| t.to_vec()).collect()
}

#[test]
fn vectorized_filter_matches_row_path_and_oracle() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ge = |c: &str, k: i64| {
        Pred::cmp(
            Operand::Attr(attr(c)),
            CmpOp::Ge,
            Operand::Const(Value::Int(k)),
        )
    };
    // (pred, semantic oracle) pairs: pure conjunctions, mixed
    // vectorizable + residual disjunction, attribute-to-attribute
    // comparison, and an all-residual predicate (columnar falls back).
    type Keep = Box<dyn Fn(&Tuple) -> bool>;
    let cases: Vec<(Pred, Keep)> = vec![
        (
            Pred::eq_const("C1", 2).and(ge("C3", 5)),
            Box::new(|t: &Tuple| t[1] == Value::Int(2) && t[3] >= Value::Int(5)),
        ),
        (
            ge("C2", 3)
                .and(Pred::eq_const("C0", 1).or(Pred::eq_const("C4", 0)))
                .and(Pred::eq_const("C5", 4)),
            Box::new(|t: &Tuple| {
                t[2] >= Value::Int(3)
                    && (t[0] == Value::Int(1) || t[4] == Value::Int(0))
                    && t[5] == Value::Int(4)
            }),
        ),
        (
            Pred::cmp(
                Operand::Attr(attr("C0")),
                CmpOp::Lt,
                Operand::Attr(attr("C3")),
            ),
            Box::new(|t: &Tuple| t[0] < t[3]),
        ),
        (
            Pred::eq_const("C1", 1).or(Pred::eq_const("C2", 2)),
            Box::new(|t: &Tuple| t[1] == Value::Int(1) || t[2] == Value::Int(2)),
        ),
    ];
    for rel in [wide_rel(7, 700, 6), wide_rel(13, 64, 8)] {
        // Force stats on one input so the selectivity-ordered route runs.
        let _ = rel.stats();
        for (pred, keep) in &cases {
            let oracle = o_select(&rel, keep);
            for threads in [1usize, 4] {
                let (row, col) = at_threads(threads, || row_vs_columnar(|| rel.select(pred)));
                let (row, col) = (row.unwrap(), col.unwrap());
                assert_eq!(
                    row, col,
                    "row vs columnar diverged ({pred}, {threads} threads)"
                );
                assert_is(&col, &oracle, &format!("σ[{pred}] @ {threads} threads"));
            }
        }
    }
    // Error parity: an unknown attribute fails identically on both paths.
    let rel = wide_rel(7, 100, 6);
    let bad = Pred::eq_const("Nope", 1).and(Pred::eq_const("C0", 0));
    let (row, col) = row_vs_columnar(|| rel.select(&bad));
    assert!(row.is_err() && col.is_err());
}

/// The natural-join oracle: a nested-loop walk matching common attributes.
fn o_natural_join(l: &Relation, r: &Relation) -> BTreeSet<Vec<Value>> {
    let common = l.schema().common(r.schema());
    let l_idx: Vec<usize> = common
        .iter()
        .map(|a| l.schema().index_of(a).unwrap())
        .collect();
    let r_idx: Vec<usize> = common
        .iter()
        .map(|a| r.schema().index_of(a).unwrap())
        .collect();
    let r_private: Vec<usize> = (0..r.schema().arity())
        .filter(|i| !r_idx.contains(i))
        .collect();
    let mut out = BTreeSet::new();
    for lt in l.iter() {
        for rt in r.iter() {
            if l_idx.iter().zip(&r_idx).all(|(&li, &ri)| lt[li] == rt[ri]) {
                let mut row: Vec<Value> = lt.to_vec();
                row.extend(r_private.iter().map(|&i| rt[i]));
                out.insert(row);
            }
        }
    }
    out
}

/// Two wide relations sharing the columns `C2`,`C3` (domains kept small so
/// joins actually match).
fn join_inputs(rows: usize) -> (Relation, Relation) {
    let l = wide_rel(7, rows, 6);
    let names = ["C2", "C3", "D0", "D1", "D2"];
    let r = Relation::from_rows(
        Schema::of(&names),
        (0..rows as i64).map(|i| {
            [
                Value::Int((i * 21 + 2) % 13), // C2's domain
                Value::Int((i * 28 + 3) % 18), // C3's domain
                Value::Int(i % 7),
                Value::Int((i * 3) % 5),
                Value::Int((i * 5 + 1) % 9),
            ]
            .into_iter()
            .collect::<Tuple>()
        }),
    )
    .unwrap();
    (l, r)
}

#[test]
fn columnar_join_keys_match_row_path_and_oracle() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for rows in [80usize, 600] {
        let (l, r) = join_inputs(rows);
        let nj_oracle = o_natural_join(&l, &r);
        for threads in [1usize, 4] {
            // Natural join: common-attribute hash keys.
            let (row, col) = at_threads(threads, || row_vs_columnar(|| l.natural_join(&r)));
            assert_eq!(row, col, "⋈ row vs columnar ({rows} rows, {threads} thr)");
            assert_is(&col, &nj_oracle, &format!("⋈ {rows} rows @ {threads} thr"));

            // Semijoin: key-set membership from extracted columns.
            let (row, col) = at_threads(threads, || row_vs_columnar(|| l.semijoin(&r)));
            assert_eq!(row, col, "⋉ row vs columnar ({rows} rows, {threads} thr)");
            let sj_oracle: BTreeSet<Vec<Value>> = nj_oracle
                .iter()
                .map(|t| t[..l.schema().arity()].to_vec())
                .collect();
            assert_is(&col, &sj_oracle, &format!("⋉ {rows} rows @ {threads} thr"));

            // Theta join: extracted equi-keys plus a residual conjunct.
            let rr = r
                .rename(&[
                    ("C2".into(), "E2".into()),
                    ("C3".into(), "E3".into()),
                    ("D0".into(), "E0".into()),
                    ("D1".into(), "E1".into()),
                    ("D2".into(), "E4".into()),
                ])
                .unwrap();
            let pred = Pred::eq_attr("C2", "E2").and(Pred::cmp(
                Operand::Attr(attr("C4")),
                CmpOp::Ge,
                Operand::Attr(attr("E0")),
            ));
            let (row, col) = at_threads(threads, || row_vs_columnar(|| l.theta_join(&rr, &pred)));
            let (row, col) = (row.unwrap(), col.unwrap());
            assert_eq!(
                row, col,
                "⋈[θ] row vs columnar ({rows} rows, {threads} thr)"
            );
            let tj_oracle: BTreeSet<Vec<Value>> = l
                .iter()
                .flat_map(|lt| {
                    rr.iter()
                        .filter(move |rt| lt[2] == rt[0] && lt[4] >= rt[2])
                        .map(move |rt| {
                            let mut row = lt.to_vec();
                            row.extend(rt.iter().copied());
                            row
                        })
                })
                .collect();
            assert_is(
                &col,
                &tj_oracle,
                &format!("⋈[θ] {rows} rows @ {threads} thr"),
            );
        }
    }
}

#[test]
fn columnar_grouping_matches_row_path_and_oracle() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Columnar grouping/division only engages when the pool fans out, so
    // drop the morsel gate to cover these inputs at 4 threads.
    pool::set_par_min_tuples(Some(1));
    for rel in [wide_rel(5, 500, 7), wide_rel(11, 64, 6)] {
        let key = attrs(&["C1", "C2"]);
        // partition_by: group membership oracle.
        let mut oracle: std::collections::BTreeMap<Vec<Value>, BTreeSet<Vec<Value>>> =
            Default::default();
        for t in rel.iter() {
            oracle
                .entry(vec![t[1], t[2]])
                .or_default()
                .insert(t.to_vec());
        }
        for threads in [1usize, 4] {
            let (row, col) = at_threads(threads, || {
                row_vs_columnar(|| rel.partition_by(&key).unwrap())
            });
            assert_eq!(row, col, "χ row vs columnar @ {threads} thr");
            assert_eq!(col.len(), oracle.len());
            for ((k, part), (ok, op)) in col.iter().zip(&oracle) {
                assert_eq!(&k.to_vec(), ok, "partition key order");
                assert_is(part, op, "partition content");
            }

            // partition_by_project, fast layout (keep = leading columns,
            // key = the rest) and a fallback layout.
            let arity = rel.schema().arity();
            let keep: Vec<relalg::Attr> = rel.schema().attrs()[..2].to_vec();
            let pkey: Vec<relalg::Attr> = rel.schema().attrs()[2..arity].to_vec();
            let (row, col) = at_threads(threads, || {
                row_vs_columnar(|| rel.partition_by_project(&pkey, &keep).unwrap())
            });
            assert_eq!(row, col, "χπ fast row vs columnar @ {threads} thr");
            let (row, col) = at_threads(threads, || {
                row_vs_columnar(|| rel.partition_by_project(&key, &keep).unwrap())
            });
            assert_eq!(row, col, "χπ fallback row vs columnar @ {threads} thr");

            // divide: against the classical RA definition built from
            // independently checked operators.
            let divisor = rel
                .project(&attrs(&["C5"]))
                .unwrap()
                .select(&Pred::cmp(
                    Operand::Attr(attr("C5")),
                    CmpOp::Ge,
                    Operand::Const(Value::Int(1)),
                ))
                .unwrap();
            let (row, col) = at_threads(threads, || {
                row_vs_columnar(|| rel.divide(&divisor).unwrap())
            });
            assert_eq!(row, col, "÷ row vs columnar @ {threads} thr");
            let a: Vec<relalg::Attr> = rel.schema().minus(divisor.schema().attrs());
            let pa = rel.project(&a).unwrap();
            let all_pairs = pa.product(&divisor).unwrap();
            let missing = all_pairs
                .difference(&all_pairs.semijoin(&rel))
                .unwrap()
                .project(&a)
                .unwrap();
            let want = pa.difference(&missing).unwrap();
            assert_eq!(col, want, "÷ classical-definition oracle @ {threads} thr");
        }
    }
    pool::set_par_min_tuples(None);
}

// ---- proptest: random wide inputs through both projection paths ----

type WideRow = ((i64, i64), (i64, i64), (i64, i64));

fn wide_rows() -> impl Strategy<Value = Vec<WideRow>> {
    // Above the columnar row threshold, tiny domains for heavy dedup.
    proptest::collection::vec(
        ((0i64..4, 0i64..3), (0i64..4, 0i64..2), (0i64..5, 0i64..3)),
        64..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn projection_paths_agree_on_random_wide_inputs(rows in wide_rows(), pick in 0usize..4) {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rel = Relation::from_rows(
            Schema::of(&["A", "B", "C", "D", "E", "F"]),
            rows.iter().map(|&((a, b), (c, d), (e, f))| {
                [a, b, c, d, e, f].into_iter().map(Value::Int).collect::<Tuple>()
            }),
        ).unwrap();
        let cols: Vec<&str> = match pick {
            0 => vec!["D"],
            1 => vec!["F", "B"],
            2 => vec!["E", "A", "C"],
            _ => vec!["B", "A", "F", "D", "C"],
        };
        let a = attrs(&cols);
        let oracle = o_project(&rel, &cols);
        set_columnar_enabled(Some(false));
        let row = rel.project(&a).unwrap();
        set_columnar_enabled(Some(true));
        let col = rel.project(&a).unwrap();
        set_columnar_enabled(None);
        prop_assert_eq!(&row, &col);
        let got: Vec<Vec<Value>> = col.iter().map(|t| t.to_vec()).collect();
        let want: Vec<Vec<Value>> = oracle.iter().cloned().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn filter_join_group_paths_agree_on_random_wide_inputs(
        rows in wide_rows(),
        k in 0i64..4,
        threads_pick in 0usize..2,
    ) {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let threads = if threads_pick == 0 { 1 } else { 4 };
        // Let the pool-gated grouping/division kernels engage on these
        // small inputs when threads > 1.
        pool::set_par_min_tuples(Some(1));
        let rel = Relation::from_rows(
            Schema::of(&["A", "B", "C", "D", "E", "F"]),
            rows.iter().map(|&((a, b), (c, d), (e, f))| {
                [a, b, c, d, e, f].into_iter().map(Value::Int).collect::<Tuple>()
            }),
        ).unwrap();
        let pred = Pred::eq_const("B", k).and(Pred::cmp(
            Operand::Attr(attr("D")),
            CmpOp::Ge,
            Operand::Const(Value::Int(1)),
        ));
        let other = rel
            .rename(&[
                ("A".into(), "G".into()),
                ("B".into(), "H".into()),
                ("E".into(), "I".into()),
                ("F".into(), "J".into()),
            ])
            .unwrap();
        let (rowp, colp) = at_threads(threads, || row_vs_columnar(|| {
            (
                rel.select(&pred).unwrap(),
                rel.natural_join(&other),
                rel.semijoin(&other),
                rel.partition_by(&attrs(&["C", "D"])).unwrap(),
                rel.divide(&rel.project(&attrs(&["F"])).unwrap()).unwrap(),
            )
        }));
        pool::set_par_min_tuples(None);
        prop_assert_eq!(rowp, colp);
    }
}
