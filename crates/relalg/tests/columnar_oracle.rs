//! Oracle suite for the versioned, statistics-carrying storage layer:
//!
//! * the **columnar projection path** (wide relations extract only the
//!   touched columns) is pinned against the row path and a
//!   `BTreeSet<Vec<Value>>` oracle, at 1 and 4 pool threads;
//! * **per-column statistics** are pinned against per-column set oracles;
//! * the **epoch tag** semantics (clones share, constructors stamp fresh,
//!   in-place mutation bumps) and the O(1) cache verification built on it
//!   are exercised with the rewrite path on and off.

use std::collections::BTreeSet;
use std::sync::Mutex;

use proptest::prelude::*;
use relalg::{
    attr, attrs, plan_cache, pool, set_columnar_enabled, Catalog, Expr, Pred, Relation, Schema,
    Tuple, Value,
};

/// Serializes tests that flip process-wide toggles (worker count, columnar
/// path, rewrite enable).
static LOCK: Mutex<()> = Mutex::new(());

fn at_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    pool::set_threads(n);
    let out = f();
    pool::set_threads(0);
    out
}

/// A deterministic wide relation: `width` columns, per-column domains of
/// different sizes so distinct counts differ per column.
fn wide_rel(seed: i64, rows: usize, width: usize) -> Relation {
    let names: Vec<String> = (0..width).map(|c| format!("C{c}")).collect();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    Relation::from_rows(
        Schema::of(&name_refs),
        (0..rows as i64).map(|i| {
            (0..width as i64)
                .map(|c| Value::Int((i * (seed + c * 7) + c) % (3 + c * 5)))
                .collect::<Tuple>()
        }),
    )
    .unwrap()
}

/// The projection oracle: a raw row walk into a sorted set.
fn o_project(rel: &Relation, cols: &[&str]) -> BTreeSet<Vec<Value>> {
    let idx: Vec<usize> = cols
        .iter()
        .map(|c| rel.schema().index_of(&attr(c)).unwrap())
        .collect();
    rel.iter()
        .map(|t| idx.iter().map(|&i| t[i]).collect())
        .collect()
}

fn assert_is(rel: &Relation, oracle: &BTreeSet<Vec<Value>>, what: &str) {
    let got: Vec<Vec<Value>> = rel.iter().map(|t| t.to_vec()).collect();
    let want: Vec<Vec<Value>> = oracle.iter().cloned().collect();
    assert_eq!(got, want, "{what}: content or order diverged from oracle");
    assert!(
        rel.tuples().windows(2).all(|w| w[0] < w[1]),
        "{what}: not strictly sorted"
    );
}

#[test]
fn columnar_projection_matches_row_path_and_oracle() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let inputs = [
        datagen::lineitem_q6(7, 600, 3), // 5 columns, string + int
        datagen::lineitem_q6(23, 64, 2), // exactly at the row threshold
        wide_rel(11, 900, 8),            // 8 columns, skewed domains
        wide_rel(3, 120, 6),             // small, heavy duplication
    ];
    let col_sets: [&[&str]; 3] = [&["C1"], &["C4", "C1"], &["C2", "C0", "C5"]];
    for rel in &inputs {
        let names: Vec<&str> = if rel.schema().contains(&attr("Product")) {
            vec!["Year", "Product"]
        } else {
            vec![]
        };
        let projections: Vec<Vec<&str>> = if names.is_empty() {
            col_sets.iter().map(|s| s.to_vec()).collect()
        } else {
            vec![vec!["Quantity"], names]
        };
        for cols in projections {
            let a: Vec<relalg::Attr> = attrs(&cols);
            let oracle = o_project(rel, &cols);
            for threads in [1usize, 4] {
                let (row, col) = at_threads(threads, || {
                    set_columnar_enabled(Some(false));
                    let row = rel.project(&a).unwrap();
                    set_columnar_enabled(Some(true));
                    let col = rel.project(&a).unwrap();
                    set_columnar_enabled(None);
                    (row, col)
                });
                assert_eq!(
                    row, col,
                    "row vs columnar diverged ({cols:?}, {threads} threads)"
                );
                assert_is(&col, &oracle, &format!("{cols:?} @ {threads} threads"));
            }
        }
    }
}

#[test]
fn distinct_values_take_the_columnar_path() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let rel = wide_rel(5, 500, 7);
    let oracle = o_project(&rel, &["C3"]);
    for threads in [1usize, 4] {
        let vals = at_threads(threads, || {
            set_columnar_enabled(Some(true));
            let v = rel.distinct_values(&attrs(&["C3"])).unwrap();
            set_columnar_enabled(None);
            v
        });
        let got: Vec<Vec<Value>> = vals.iter().map(|t| t.to_vec()).collect();
        let want: Vec<Vec<Value>> = oracle.iter().cloned().collect();
        assert_eq!(got, want, "distinct_values @ {threads} threads");
    }
}

#[test]
fn stats_match_per_column_oracles() {
    for rel in [
        datagen::lineitem_q6(13, 400, 4),
        wide_rel(9, 333, 6),
        Relation::empty(Schema::of(&["A", "B"])),
    ] {
        let stats = rel.stats();
        assert_eq!(stats.rows, rel.len() as u64);
        assert_eq!(stats.cols.len(), rel.schema().arity());
        for (i, col) in stats.cols.iter().enumerate() {
            let oracle: BTreeSet<Value> = rel.iter().map(|t| t[i]).collect();
            assert_eq!(col.distinct, oracle.len() as u64, "col {i} distinct");
            assert_eq!(col.min, oracle.iter().next().copied(), "col {i} min");
            assert_eq!(col.max, oracle.iter().next_back().copied(), "col {i} max");
        }
    }
}

#[test]
fn epoch_tags_identify_content() {
    let r = wide_rel(2, 100, 5);
    // A clone is the same content: same tag, fast_eq without content walk.
    let c = r.clone();
    assert_eq!(r.epoch(), c.epoch());
    assert!(r.fast_eq(&c));
    // An independently built, content-equal relation: different tag, but
    // fast_eq still true through the content fallback.
    let rebuilt = wide_rel(2, 100, 5);
    assert_ne!(r.epoch(), rebuilt.epoch());
    assert_eq!(r, rebuilt);
    assert!(r.fast_eq(&rebuilt));
    // Every constructing operation stamps a fresh tag.
    let proj = r.project(&attrs(&["C1"])).unwrap();
    assert_ne!(proj.epoch(), r.epoch());
    let merged = r.merge_rows(vec![vec![Value::Int(-1); 5]]).unwrap();
    assert_ne!(merged.epoch(), r.epoch());
    // In-place mutation bumps the tag (the old content is gone)…
    let mut m = r.clone();
    m.insert(vec![Value::Int(-7); 5]).unwrap();
    assert_ne!(m.epoch(), r.epoch());
    assert!(!m.fast_eq(&r));
    // …but a no-op insert (duplicate) or remove (absent) keeps it.
    let mut n = r.clone();
    let first = n.iter().next().unwrap().to_vec();
    n.insert(first.clone()).unwrap();
    assert_eq!(n.epoch(), r.epoch());
    assert!(!n.remove(&[Value::Int(12345); 5]));
    assert_eq!(n.epoch(), r.epoch());
}

/// End-to-end cache verification: catalogs holding clones (same epoch) hit
/// O(1); rebuilt catalogs (fresh epochs, equal content) hit through the
/// content fallback; changed content never hits — at 1 and 4 threads, with
/// the rewrite path pinned on, and no sharing at all with it off.
#[test]
fn epoch_cache_verification_across_catalogs() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = || {
        Expr::table("L")
            .select(Pred::eq_const("C0", 1))
            .project(attrs(&["C2", "C1"]))
    };
    for threads in [1usize, 4] {
        at_threads(threads, || {
            plan_cache::set_enabled(Some(true));
            plan_cache::clear();
            let base = wide_rel(4, 300, 5);
            let mut c1 = Catalog::new();
            c1.put("L", base.clone());
            let r1 = c1.eval(&plan()).unwrap();
            // Clone catalog: epoch tags match, O(1) verified hit.
            let mut c2 = Catalog::new();
            c2.put("L", base.clone());
            let r2 = c2.eval(&plan()).unwrap();
            assert!(
                std::sync::Arc::ptr_eq(&r1, &r2),
                "clone catalog must hit ({threads} threads)"
            );
            // Rebuilt catalog: tags differ, the content fallback hits.
            let mut c3 = Catalog::new();
            c3.put("L", wide_rel(4, 300, 5));
            let r3 = c3.eval(&plan()).unwrap();
            assert!(
                std::sync::Arc::ptr_eq(&r1, &r3),
                "rebuilt catalog must hit via content fallback"
            );
            // Changed content: never served from the cache.
            let mut c4 = Catalog::new();
            c4.put("L", wide_rel(6, 300, 5));
            let r4 = c4.eval(&plan()).unwrap();
            assert!(!std::sync::Arc::ptr_eq(&r1, &r4));
            // Rewrite off: no cross-catalog sharing of any kind.
            plan_cache::set_enabled(Some(false));
            let mut c5 = Catalog::new();
            c5.put("L", base.clone());
            let r5 = c5.eval(&plan()).unwrap();
            assert!(!std::sync::Arc::ptr_eq(&r1, &r5));
            assert_eq!(*r1, *r5);
            plan_cache::set_enabled(None);
            plan_cache::clear();
        });
    }
}

// ---- proptest: random wide inputs through both projection paths ----

type WideRow = ((i64, i64), (i64, i64), (i64, i64));

fn wide_rows() -> impl Strategy<Value = Vec<WideRow>> {
    // Above the columnar row threshold, tiny domains for heavy dedup.
    proptest::collection::vec(
        ((0i64..4, 0i64..3), (0i64..4, 0i64..2), (0i64..5, 0i64..3)),
        64..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn projection_paths_agree_on_random_wide_inputs(rows in wide_rows(), pick in 0usize..4) {
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rel = Relation::from_rows(
            Schema::of(&["A", "B", "C", "D", "E", "F"]),
            rows.iter().map(|&((a, b), (c, d), (e, f))| {
                [a, b, c, d, e, f].into_iter().map(Value::Int).collect::<Tuple>()
            }),
        ).unwrap();
        let cols: Vec<&str> = match pick {
            0 => vec!["D"],
            1 => vec!["F", "B"],
            2 => vec!["E", "A", "C"],
            _ => vec!["B", "A", "F", "D", "C"],
        };
        let a = attrs(&cols);
        let oracle = o_project(&rel, &cols);
        set_columnar_enabled(Some(false));
        let row = rel.project(&a).unwrap();
        set_columnar_enabled(Some(true));
        let col = rel.project(&a).unwrap();
        set_columnar_enabled(None);
        prop_assert_eq!(&row, &col);
        let got: Vec<Vec<Value>> = col.iter().map(|t| t.to_vec()).collect();
        let want: Vec<Vec<Value>> = oracle.iter().cloned().collect();
        prop_assert_eq!(got, want);
    }
}
