//! Round-trip tests for the interner-aware binary relation codec
//! (`relalg::codec`): identity on realistic datagen relations (schemas,
//! tuples, interned strings, computed statistics), identity on
//! proptest-generated random relations, and clean rejection — never a
//! panic — of corrupted or truncated inputs.

use proptest::prelude::*;
use relalg::codec::{Dec, Enc};
use relalg::{Relation, Schema, Value};

fn round_trip(rel: &Relation) -> Relation {
    let mut enc = Enc::new();
    enc.put_relation(rel);
    let bytes = enc.finish();
    let mut dec = Dec::new(&bytes).expect("string table must parse");
    let back = dec.get_relation().expect("round trip must decode");
    assert_eq!(dec.remaining(), 0, "decoder left trailing bytes");
    back
}

fn assert_identity(rel: &Relation, what: &str) {
    let back = round_trip(rel);
    assert_eq!(&back, rel, "{what}: schema or tuples diverged");
    assert_eq!(back.schema(), rel.schema(), "{what}: schema diverged");
    let rows: Vec<Vec<Value>> = rel.iter().map(|t| t.to_vec()).collect();
    let back_rows: Vec<Vec<Value>> = back.iter().map(|t| t.to_vec()).collect();
    assert_eq!(back_rows, rows, "{what}: row order diverged");
}

/// Seeded domain relations round-trip bit-identically, including the
/// computed per-column statistics (persisted so recovery does not pay
/// the stats scan again).
#[test]
fn datagen_relations_round_trip_with_stats() {
    let rels = [
        ("flights", datagen::flights(7, 6, 10, 4)),
        ("hotels", datagen::hotels(7, 25, 8)),
        ("census", datagen::census(7, 30, 5)),
        ("lineitem", datagen::lineitem(7, 120, 3, 4)),
    ];
    for (name, rel) in &rels {
        // Without stats computed: decoded relation has none either.
        assert_identity(rel, name);

        // Force stats, re-encode: they must survive the round trip.
        let stats = rel.stats().clone();
        let back = round_trip(rel);
        let back_stats = back
            .stats_if_computed()
            .unwrap_or_else(|| panic!("{name}: stats were not persisted"));
        assert_eq!(back_stats.rows, stats.rows, "{name}: row count stat");
        assert_eq!(back_stats.cols.len(), stats.cols.len(), "{name}: col stats");
        for (i, (a, b)) in stats.cols.iter().zip(back_stats.cols.iter()).enumerate() {
            assert_eq!(a.distinct, b.distinct, "{name}: distinct of col {i}");
            assert_eq!(a.min, b.min, "{name}: min of col {i}");
            assert_eq!(a.max, b.max, "{name}: max of col {i}");
        }
    }
}

/// A decoded relation gets a *fresh* epoch: epochs witness pointer
/// identity of contents within a process, and the codec must never forge
/// an equality claim between a decoded copy and some unrelated live
/// relation that happened to reuse the number.
#[test]
fn decoded_relations_get_fresh_epochs() {
    let rel = datagen::flights(3, 4, 6, 3);
    let back = round_trip(&rel);
    assert_ne!(rel.epoch(), back.epoch(), "epoch must not be preserved");
    assert_eq!(&back, &rel, "contents must be preserved");
}

/// Every truncation and every single-byte corruption of a valid message
/// is rejected with an error — never a panic, never a silent success
/// that fabricates different data.
#[test]
fn corrupted_and_truncated_inputs_are_rejected_cleanly() {
    let rel = datagen::census(11, 12, 3);
    let _ = rel.stats();
    let mut enc = Enc::new();
    enc.put_relation(&rel);
    let bytes = enc.finish();

    for cut in 0..bytes.len() {
        let mut dec = match Dec::new(&bytes[..cut]) {
            Ok(d) => d,
            Err(_) => continue,
        };
        let _ = dec.get_relation(); // must not panic
    }

    for pos in 0..bytes.len() {
        for flip in [0x01u8, 0x80] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= flip;
            let mut dec = match Dec::new(&corrupt) {
                Ok(d) => d,
                Err(_) => continue,
            };
            if let Ok(back) = dec.get_relation() {
                // A surviving decode may only differ in ways the flip
                // legitimately encodes (e.g. a flipped value bit); it
                // must still be a structurally valid relation.
                assert!(back.schema().arity() == rel.schema().arity() || back != rel);
            }
        }
    }
}

/// Many relations in one message share one string table: each distinct
/// string is stored once, and every decoded relation is still identical.
#[test]
fn string_table_is_shared_across_relations_in_one_message() {
    let a = datagen::flights(5, 3, 5, 2);
    let b = datagen::flights(5, 3, 5, 2); // same strings again
    let mut enc = Enc::new();
    enc.put_relation(&a);
    enc.put_relation(&b);
    let both = enc.finish();

    let mut solo = Enc::new();
    solo.put_relation(&a);
    let one = solo.finish();

    // The second copy re-uses every interned string: the pair costs far
    // less than twice the single encoding.
    assert!(
        both.len() < one.len() * 2,
        "string table was not shared ({} vs 2×{})",
        both.len(),
        one.len()
    );

    let mut dec = Dec::new(&both).unwrap();
    assert_eq!(dec.get_relation().unwrap(), a);
    assert_eq!(dec.get_relation().unwrap(), b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random relations — mixed int/string/pad values, arbitrary widths —
    /// survive the round trip exactly.
    #[test]
    fn random_relations_round_trip(seed in any::<u64>()) {
        let mut x = seed | 1;
        let mut next = move |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x.wrapping_mul(0x2545_F491_4F6C_DD1D)) % m.max(1)
        };
        let arity = 1 + next(5) as usize;
        let attrs: Vec<String> = (0..arity).map(|i| format!("C{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
        let rows = (0..next(40)).map(|_| {
            (0..arity)
                .map(|_| match next(4) {
                    0 => Value::Pad,
                    1 => Value::Int(next(1000) as i64 - 500),
                    2 => Value::str(&format!("s{}", next(12))),
                    _ => Value::str(""),
                })
                .collect::<Vec<Value>>()
        });
        let rel = Relation::from_rows(Schema::of(&attr_refs), rows).unwrap();
        if next(2) == 0 {
            let _ = rel.stats(); // sometimes persist stats too
        }
        let back = round_trip(&rel);
        prop_assert_eq!(&back, &rel, "random relation diverged (seed {})", seed);
    }
}
