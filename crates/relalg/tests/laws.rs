//! Algebraic laws of the relational substrate, property-tested: the
//! classical identities that the WSA translation relies on (division by
//! difference, the `=⊲⊳` definition of Remark 5.5, join/semijoin
//! decompositions, set-operation laws), plus **join-path equivalence**: the
//! hash-partitioned equi-join and semijoin paths must agree with a
//! nested-loop oracle on randomized inputs from `datagen`.

use proptest::prelude::*;
use relalg::{attr, attrs, Attr, CmpOp, Operand, Pred, Relation, Schema, Value};

fn rel_ab(rows: Vec<(i64, i64)>) -> Relation {
    Relation::from_rows(
        Schema::of(&["A", "B"]),
        rows.into_iter()
            .map(|(a, b)| vec![Value::Int(a), Value::Int(b)]),
    )
    .unwrap()
}

fn rel_b(rows: Vec<i64>) -> Relation {
    Relation::from_rows(
        Schema::of(&["B"]),
        rows.into_iter().map(|b| vec![Value::Int(b)]),
    )
    .unwrap()
}

fn rel_bc(rows: Vec<(i64, i64)>) -> Relation {
    Relation::from_rows(
        Schema::of(&["B", "C"]),
        rows.into_iter()
            .map(|(b, c)| vec![Value::Int(b), Value::Int(c)]),
    )
    .unwrap()
}

fn small_pairs() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..4, 0i64..4), 0..8)
}

fn small_vals() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(0i64..4, 0..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// R ÷ S = π_A(R) − π_A(π_A(R) × S − R)  (classical definition).
    #[test]
    fn division_by_difference(r in small_pairs(), s in small_vals()) {
        let r = rel_ab(r);
        let s = rel_b(s);
        let lhs = r.divide(&s).unwrap();
        let pa = r.project(&attrs(&["A"])).unwrap();
        let rhs = pa
            .difference(
                &pa.product(&s)
                    .unwrap()
                    .difference(&r)
                    .unwrap()
                    .project(&attrs(&["A"]))
                    .unwrap(),
            )
            .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// R =⊲⊳ S = (R ⋈ S) ∪ (R − R⋉S) × {⟨c,…,c⟩}  (Remark 5.5).
    #[test]
    fn outer_pad_join_definition(r in small_pairs(), s in small_pairs()) {
        let r = rel_ab(r);
        let s = rel_bc(s);
        let lhs = r.outer_pad_join(&s);
        let joined = r.natural_join(&s);
        let dangling = r.difference(&r.semijoin(&s)).unwrap();
        let pad = Relation::from_rows(
            Schema::of(&["C"]),
            vec![vec![Value::Pad]],
        )
        .unwrap();
        let rhs = joined.union(&dangling.product(&pad).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Semijoin is the projection of the join onto the left schema.
    #[test]
    fn semijoin_is_projected_join(r in small_pairs(), s in small_pairs()) {
        let r = rel_ab(r);
        let s = rel_bc(s);
        let lhs = r.semijoin(&s);
        let rhs = r.natural_join(&s).project(&attrs(&["A", "B"])).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Natural join over disjoint-attribute renamed copies is the theta
    /// join σ_{B=B'}(R × δ(S)).
    #[test]
    fn natural_join_is_selected_product(r in small_pairs(), s in small_pairs()) {
        let r = rel_ab(r);
        let s = rel_bc(s);
        let renamed = s.rename(&[(attr("B"), attr("B2"))]).unwrap();
        let theta = r
            .theta_join(&renamed, &Pred::eq_attr("B", "B2"))
            .unwrap()
            .project(&attrs(&["A", "B", "C"]))
            .unwrap();
        prop_assert_eq!(r.natural_join(&s), theta);
    }

    /// Set-operation laws: idempotence, commutativity-as-sets, absorption.
    #[test]
    fn set_operation_laws(r in small_pairs(), s in small_pairs()) {
        let r = rel_ab(r);
        let s = rel_ab(s);
        prop_assert_eq!(r.union(&r).unwrap(), r.clone());
        prop_assert_eq!(r.intersect(&r).unwrap(), r.clone());
        prop_assert_eq!(r.difference(&r).unwrap().len(), 0);
        prop_assert_eq!(r.union(&s).unwrap(), s.union(&r).unwrap());
        prop_assert_eq!(r.intersect(&s).unwrap(), s.intersect(&r).unwrap());
        // R − (R − S) = R ∩ S.
        prop_assert_eq!(
            r.difference(&r.difference(&s).unwrap()).unwrap(),
            r.intersect(&s).unwrap()
        );
        // |R × S| = |R|·|S| on disjoint schemas.
        let t = rel_bc(vec![(0, 0), (1, 1)])
            .rename(&[(attr("B"), attr("X")), (attr("C"), attr("Y"))])
            .unwrap();
        prop_assert_eq!(r.product(&t).unwrap().len(), r.len() * t.len());
    }

    /// Selection distributes over the set operations.
    #[test]
    fn selection_distributes(r in small_pairs(), s in small_pairs()) {
        let r = rel_ab(r);
        let s = rel_ab(s);
        let phi = Pred::eq_const("A", 1);
        prop_assert_eq!(
            r.union(&s).unwrap().select(&phi).unwrap(),
            r.select(&phi).unwrap().union(&s.select(&phi).unwrap()).unwrap()
        );
        prop_assert_eq!(
            r.difference(&s).unwrap().select(&phi).unwrap(),
            r.select(&phi).unwrap().difference(&s.select(&phi).unwrap()).unwrap()
        );
    }

    /// Projection is idempotent and monotone in the kept attributes.
    #[test]
    fn projection_laws(r in small_pairs()) {
        let r = rel_ab(r);
        let pa = r.project(&attrs(&["A"])).unwrap();
        prop_assert_eq!(pa.project(&attrs(&["A"])).unwrap(), pa.clone());
        prop_assert!(pa.len() <= r.len());
        // Rename round-trip is the identity.
        let renamed = r
            .rename(&[(attr("A"), attr("X"))])
            .unwrap()
            .rename(&[(attr("X"), attr("A"))])
            .unwrap();
        prop_assert_eq!(renamed, r);
    }

    /// The expression evaluator agrees with direct relation operations.
    #[test]
    fn expr_eval_matches_direct(r in small_pairs(), s in small_vals()) {
        use relalg::{Catalog, Expr};
        let r = rel_ab(r);
        let s = rel_b(s);
        let mut catalog = Catalog::new();
        catalog.put("R", r.clone());
        catalog.put("S", s.clone());

        let e = Expr::table("R")
            .select(Pred::eq_const("A", 1))
            .project(attrs(&["B"]))
            .union(&Expr::table("S"));
        let direct = r
            .select(&Pred::eq_const("A", 1))
            .unwrap()
            .project(&attrs(&["B"]))
            .unwrap()
            .union(&s)
            .unwrap();
        prop_assert_eq!(&*catalog.eval(&e).unwrap(), &direct);

        let e = Expr::table("R").divide(&Expr::table("S"));
        prop_assert_eq!(&*catalog.eval(&e).unwrap(), &r.divide(&s).unwrap());
        let e = Expr::table("R").outer_pad_join(&Expr::table("S"));
        prop_assert_eq!(&*catalog.eval(&e).unwrap(), &r.outer_pad_join(&s));
    }
}

// ---- join-path equivalence: hash paths vs. a nested-loop oracle ----
//
// The engine routes theta joins with equi-conjuncts, natural joins and
// semijoins through hash indexes built on the smaller side. These tests pin
// those paths against the textbook nested-loop definitions on randomized
// inputs produced by `datagen` (seeded, hence reproducible).

/// Nested-loop σ_φ(R × S): the definition `theta_join` must agree with.
fn oracle_theta_join(r: &Relation, s: &Relation, pred: &Pred) -> Relation {
    let mut attrs = r.schema().attrs().to_vec();
    attrs.extend_from_slice(s.schema().attrs());
    let schema = Schema::new(attrs);
    let compiled = pred.compile(&schema).unwrap();
    let mut rows = Vec::new();
    for l in r.iter() {
        for t in s.iter() {
            let mut row = l.clone();
            row.extend_from_slice(t);
            if compiled.eval(&row) {
                rows.push(row);
            }
        }
    }
    Relation::from_rows(schema, rows).unwrap()
}

/// Nested-loop natural join on the common attributes.
fn oracle_natural_join(r: &Relation, s: &Relation) -> Relation {
    let common: Vec<Attr> = r.schema().common(s.schema());
    let r_extra: Vec<Attr> = s.schema().minus(&common);
    let mut attrs = r.schema().attrs().to_vec();
    attrs.extend(r_extra.iter().cloned());
    let schema = Schema::new(attrs);
    let mut rows = Vec::new();
    for l in r.iter() {
        for t in s.iter() {
            let agree = common.iter().all(|a| {
                let li = r.schema().index_of(a).unwrap();
                let ri = s.schema().index_of(a).unwrap();
                l[li] == t[ri]
            });
            if agree {
                let mut row = l.clone();
                for a in &r_extra {
                    row.push(t[s.schema().index_of(a).unwrap()]);
                }
                rows.push(row);
            }
        }
    }
    Relation::from_rows(schema, rows).unwrap()
}

/// Nested-loop semijoin membership test.
fn oracle_semijoin(r: &Relation, s: &Relation) -> Relation {
    let common: Vec<Attr> = r.schema().common(s.schema());
    let rows = r.iter().filter(|l| {
        s.iter().any(|t| {
            common.iter().all(|a| {
                let li = r.schema().index_of(a).unwrap();
                let ri = s.schema().index_of(a).unwrap();
                l[li] == t[ri]
            })
        })
    });
    Relation::from_rows(r.schema().clone(), rows.cloned()).unwrap()
}

/// Randomized relations over the given schemas, via datagen's seeded
/// world-set generator (one world, two relations).
fn random_rels(
    seed: u64,
    left: Vec<&'static str>,
    right: Vec<&'static str>,
) -> (Relation, Relation) {
    let spec = datagen::RandomSpec {
        schemas: vec![left, right],
        worlds: 1,
        max_tuples: 12,
        domain: 5,
    };
    let ws = datagen::random_world_set(seed, &spec);
    let w = ws.the_world().expect("single world");
    (w.rel(0).clone(), w.rel(1).clone())
}

#[test]
fn hash_equi_join_agrees_with_nested_loop_oracle() {
    for seed in 0..300u64 {
        let (r, s) = random_rels(seed, vec!["A", "B"], vec!["C", "D"]);
        // Pure equi-join on A = C.
        let pred = Pred::eq_attr("A", "C");
        assert_eq!(
            r.theta_join(&s, &pred).unwrap(),
            oracle_theta_join(&r, &s, &pred),
            "equi-join diverged from oracle at seed {seed}"
        );
        // Equi-conjunct plus residual range conjunct: the hash path must
        // apply the residual on matches.
        let pred = Pred::eq_attr("A", "C").and(Pred::cmp(
            Operand::Attr(attr("B")),
            CmpOp::Lt,
            Operand::Attr(attr("D")),
        ));
        assert_eq!(
            r.theta_join(&s, &pred).unwrap(),
            oracle_theta_join(&r, &s, &pred),
            "equi-join with residual diverged from oracle at seed {seed}"
        );
        // Two equi-conjuncts (composite hash key), written right=left the
        // second time to exercise operand flipping.
        let pred = Pred::eq_attr("A", "C").and(Pred::eq_attr("D", "B"));
        assert_eq!(
            r.theta_join(&s, &pred).unwrap(),
            oracle_theta_join(&r, &s, &pred),
            "composite-key equi-join diverged from oracle at seed {seed}"
        );
        // No equi-conjunct at all: the streamed nested loop path.
        let pred = Pred::cmp(
            Operand::Attr(attr("B")),
            CmpOp::Ge,
            Operand::Attr(attr("D")),
        )
        .or(Pred::eq_const("A", 0));
        assert_eq!(
            r.theta_join(&s, &pred).unwrap(),
            oracle_theta_join(&r, &s, &pred),
            "non-equi theta join diverged from oracle at seed {seed}"
        );
        // Equality under negation must NOT be treated as a hash key.
        let pred = Pred::eq_attr("A", "C").not();
        assert_eq!(
            r.theta_join(&s, &pred).unwrap(),
            oracle_theta_join(&r, &s, &pred),
            "negated equality diverged from oracle at seed {seed}"
        );
    }
}

#[test]
fn hash_natural_join_and_semijoin_agree_with_oracle() {
    for seed in 0..300u64 {
        // Shared attribute B: the natural-join/semijoin key.
        let (r, s) = random_rels(seed, vec!["A", "B"], vec!["B", "C"]);
        assert_eq!(
            r.natural_join(&s),
            oracle_natural_join(&r, &s),
            "natural join diverged from oracle at seed {seed}"
        );
        // Both asymmetries: index-left/probe-right and the reverse.
        assert_eq!(
            s.natural_join(&r),
            oracle_natural_join(&s, &r),
            "reversed natural join diverged from oracle at seed {seed}"
        );
        assert_eq!(
            r.semijoin(&s),
            oracle_semijoin(&r, &s),
            "semijoin diverged from oracle at seed {seed}"
        );
        assert_eq!(
            s.semijoin(&r),
            oracle_semijoin(&s, &r),
            "reversed semijoin diverged from oracle at seed {seed}"
        );
    }
}

/// The acceptance test for the hash path: a theta join whose cross product
/// would have ~9·10⁸ rows. Materializing `A × B` here would exhaust memory;
/// the hash-partitioned path touches only the ~30k matching pairs.
#[test]
fn equi_theta_join_never_materializes_the_cross_product() {
    let n: i64 = 30_000;
    let r = Relation::from_rows(
        Schema::of(&["A", "B"]),
        (0..n).map(|i| vec![Value::Int(i), Value::Int(i % 7)]),
    )
    .unwrap();
    let s = Relation::from_rows(
        Schema::of(&["C", "D"]),
        (0..n).map(|i| vec![Value::Int(i), Value::Int(i % 5)]),
    )
    .unwrap();
    // |R × S| = 9·10⁸ tuples (~tens of GB). The equi-conjunct A = C keeps
    // the join linear: exactly n matching pairs, filtered by the residual.
    let pred = Pred::eq_attr("A", "C").and(Pred::cmp(
        Operand::Attr(attr("B")),
        CmpOp::Le,
        Operand::Attr(attr("D")),
    ));
    let out = r.theta_join(&s, &pred).unwrap();
    assert!(!out.is_empty());
    assert!(out.len() < n as usize);
    // Spot-check against the per-tuple definition.
    for t in out.iter().take(100) {
        assert_eq!(t[0], t[2]);
        assert!(t[1] <= t[3]);
    }
}

/// Empty-input short-circuits return the correct schemas without work.
#[test]
fn empty_input_short_circuits() {
    let r = rel_ab(vec![(1, 2)]);
    let empty_ab = Relation::empty(Schema::of(&["A", "B"]));
    let empty_cd = Relation::empty(Schema::of(&["C", "D"]));
    let pred = Pred::eq_attr("A", "C");
    assert!(r.theta_join(&empty_cd, &pred).unwrap().is_empty());
    assert_eq!(
        r.theta_join(&empty_cd, &pred).unwrap().schema(),
        &Schema::of(&["A", "B", "C", "D"])
    );
    assert!(empty_ab.natural_join(&r).is_empty());
    assert!(r.product(&empty_cd).unwrap().is_empty());
    assert!(empty_ab.semijoin(&r).is_empty());
    assert!(r.semijoin(&empty_ab).is_empty());
    assert!(empty_ab.divide(&rel_b(vec![1])).unwrap().is_empty());
}
