//! Algebraic laws of the relational substrate, property-tested: the
//! classical identities that the WSA translation relies on (division by
//! difference, the `=⊲⊳` definition of Remark 5.5, join/semijoin
//! decompositions, set-operation laws).

use proptest::prelude::*;
use relalg::{attr, attrs, Pred, Relation, Schema, Value};

fn rel_ab(rows: Vec<(i64, i64)>) -> Relation {
    Relation::from_rows(
        Schema::of(&["A", "B"]),
        rows.into_iter()
            .map(|(a, b)| vec![Value::Int(a), Value::Int(b)]),
    )
    .unwrap()
}

fn rel_b(rows: Vec<i64>) -> Relation {
    Relation::from_rows(
        Schema::of(&["B"]),
        rows.into_iter().map(|b| vec![Value::Int(b)]),
    )
    .unwrap()
}

fn rel_bc(rows: Vec<(i64, i64)>) -> Relation {
    Relation::from_rows(
        Schema::of(&["B", "C"]),
        rows.into_iter()
            .map(|(b, c)| vec![Value::Int(b), Value::Int(c)]),
    )
    .unwrap()
}

fn small_pairs() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..4, 0i64..4), 0..8)
}

fn small_vals() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(0i64..4, 0..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// R ÷ S = π_A(R) − π_A(π_A(R) × S − R)  (classical definition).
    #[test]
    fn division_by_difference(r in small_pairs(), s in small_vals()) {
        let r = rel_ab(r);
        let s = rel_b(s);
        let lhs = r.divide(&s).unwrap();
        let pa = r.project(&attrs(&["A"])).unwrap();
        let rhs = pa
            .difference(
                &pa.product(&s)
                    .unwrap()
                    .difference(&r)
                    .unwrap()
                    .project(&attrs(&["A"]))
                    .unwrap(),
            )
            .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// R =⊲⊳ S = (R ⋈ S) ∪ (R − R⋉S) × {⟨c,…,c⟩}  (Remark 5.5).
    #[test]
    fn outer_pad_join_definition(r in small_pairs(), s in small_pairs()) {
        let r = rel_ab(r);
        let s = rel_bc(s);
        let lhs = r.outer_pad_join(&s);
        let joined = r.natural_join(&s);
        let dangling = r.difference(&r.semijoin(&s)).unwrap();
        let pad = Relation::from_rows(
            Schema::of(&["C"]),
            vec![vec![Value::Pad]],
        )
        .unwrap();
        let rhs = joined.union(&dangling.product(&pad).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Semijoin is the projection of the join onto the left schema.
    #[test]
    fn semijoin_is_projected_join(r in small_pairs(), s in small_pairs()) {
        let r = rel_ab(r);
        let s = rel_bc(s);
        let lhs = r.semijoin(&s);
        let rhs = r.natural_join(&s).project(&attrs(&["A", "B"])).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    /// Natural join over disjoint-attribute renamed copies is the theta
    /// join σ_{B=B'}(R × δ(S)).
    #[test]
    fn natural_join_is_selected_product(r in small_pairs(), s in small_pairs()) {
        let r = rel_ab(r);
        let s = rel_bc(s);
        let renamed = s.rename(&[(attr("B"), attr("B2"))]).unwrap();
        let theta = r
            .theta_join(&renamed, &Pred::eq_attr("B", "B2"))
            .unwrap()
            .project(&attrs(&["A", "B", "C"]))
            .unwrap();
        prop_assert_eq!(r.natural_join(&s), theta);
    }

    /// Set-operation laws: idempotence, commutativity-as-sets, absorption.
    #[test]
    fn set_operation_laws(r in small_pairs(), s in small_pairs()) {
        let r = rel_ab(r);
        let s = rel_ab(s);
        prop_assert_eq!(r.union(&r).unwrap(), r.clone());
        prop_assert_eq!(r.intersect(&r).unwrap(), r.clone());
        prop_assert_eq!(r.difference(&r).unwrap().len(), 0);
        prop_assert_eq!(r.union(&s).unwrap(), s.union(&r).unwrap());
        prop_assert_eq!(r.intersect(&s).unwrap(), s.intersect(&r).unwrap());
        // R − (R − S) = R ∩ S.
        prop_assert_eq!(
            r.difference(&r.difference(&s).unwrap()).unwrap(),
            r.intersect(&s).unwrap()
        );
        // |R × S| = |R|·|S| on disjoint schemas.
        let t = rel_bc(vec![(0, 0), (1, 1)])
            .rename(&[(attr("B"), attr("X")), (attr("C"), attr("Y"))])
            .unwrap();
        prop_assert_eq!(r.product(&t).unwrap().len(), r.len() * t.len());
    }

    /// Selection distributes over the set operations.
    #[test]
    fn selection_distributes(r in small_pairs(), s in small_pairs()) {
        let r = rel_ab(r);
        let s = rel_ab(s);
        let phi = Pred::eq_const("A", 1);
        prop_assert_eq!(
            r.union(&s).unwrap().select(&phi).unwrap(),
            r.select(&phi).unwrap().union(&s.select(&phi).unwrap()).unwrap()
        );
        prop_assert_eq!(
            r.difference(&s).unwrap().select(&phi).unwrap(),
            r.select(&phi).unwrap().difference(&s.select(&phi).unwrap()).unwrap()
        );
    }

    /// Projection is idempotent and monotone in the kept attributes.
    #[test]
    fn projection_laws(r in small_pairs()) {
        let r = rel_ab(r);
        let pa = r.project(&attrs(&["A"])).unwrap();
        prop_assert_eq!(pa.project(&attrs(&["A"])).unwrap(), pa.clone());
        prop_assert!(pa.len() <= r.len());
        // Rename round-trip is the identity.
        let renamed = r
            .rename(&[(attr("A"), attr("X"))])
            .unwrap()
            .rename(&[(attr("X"), attr("A"))])
            .unwrap();
        prop_assert_eq!(renamed, r);
    }

    /// The expression evaluator agrees with direct relation operations.
    #[test]
    fn expr_eval_matches_direct(r in small_pairs(), s in small_vals()) {
        use relalg::{Catalog, Expr};
        let r = rel_ab(r);
        let s = rel_b(s);
        let mut catalog = Catalog::new();
        catalog.put("R", r.clone());
        catalog.put("S", s.clone());

        let e = Expr::table("R")
            .select(Pred::eq_const("A", 1))
            .project(attrs(&["B"]))
            .union(&Expr::table("S"));
        let direct = r
            .select(&Pred::eq_const("A", 1))
            .unwrap()
            .project(&attrs(&["B"]))
            .unwrap()
            .union(&s)
            .unwrap();
        prop_assert_eq!(catalog.eval(&e).unwrap(), direct);

        let e = Expr::table("R").divide(&Expr::table("S"));
        prop_assert_eq!(catalog.eval(&e).unwrap(), r.divide(&s).unwrap());
        let e = Expr::table("R").outer_pad_join(&Expr::table("S"));
        prop_assert_eq!(catalog.eval(&e).unwrap(), r.outer_pad_join(&s));
    }
}
