//! Oracle tests for the sorted-vec tuple storage.
//!
//! `Relation` stores its tuples as a sorted, deduplicated `Vec<Tuple>`
//! (built through `RelationBuilder` or one of the order-preserving fast
//! paths). These tests pin every operator against the old `BTreeSet`
//! semantics: an oracle that re-implements each operation over
//! `BTreeSet<Vec<Value>>` must agree with the engine **and** the engine's
//! output must satisfy the storage invariant (strictly sorted, hence
//! deduplicated) — on datagen-seeded randomized inputs and on
//! proptest-shim generated edge cases.

use std::collections::BTreeSet;

use proptest::prelude::*;
use relalg::{attr, attrs, Attr, Pred, Relation, Schema, Tuple, Value};

/// The reference representation: schema + BTreeSet of plain value vectors.
type OracleRel = (Schema, BTreeSet<Vec<Value>>);

fn to_oracle(r: &Relation) -> OracleRel {
    (r.schema().clone(), r.iter().map(|t| t.to_vec()).collect())
}

/// The engine relation must match the oracle set *and* iterate in the
/// BTreeSet's sorted order with no duplicates — the invariant everything
/// downstream (golden tests, printed tables) relies on.
fn assert_matches(engine: &Relation, oracle: &OracleRel, what: &str) {
    assert_eq!(engine.schema(), &oracle.0, "{what}: schema diverged");
    let engine_rows: Vec<Vec<Value>> = engine.iter().map(|t| t.to_vec()).collect();
    let oracle_rows: Vec<Vec<Value>> = oracle.1.iter().cloned().collect();
    assert_eq!(engine_rows, oracle_rows, "{what}: rows or order diverged");
    assert!(
        engine
            .iter()
            .collect::<Vec<&Tuple>>()
            .windows(2)
            .all(|w| w[0] < w[1]),
        "{what}: iteration not strictly sorted"
    );
}

// ---- oracle operator implementations over BTreeSet<Vec<Value>> ----

fn o_select(r: &Relation, pred: &Pred) -> OracleRel {
    let compiled = pred.compile(r.schema()).unwrap();
    (
        r.schema().clone(),
        r.iter()
            .map(|t| t.to_vec())
            .filter(|t| compiled.eval(t))
            .collect(),
    )
}

fn o_project(r: &Relation, keep: &[Attr]) -> OracleRel {
    let idx: Vec<usize> = keep
        .iter()
        .map(|a| r.schema().index_of(a).unwrap())
        .collect();
    (
        Schema::new(keep.to_vec()),
        r.iter()
            .map(|t| idx.iter().map(|&i| t[i]).collect())
            .collect(),
    )
}

fn o_product(r: &Relation, s: &Relation) -> OracleRel {
    let mut a = r.schema().attrs().to_vec();
    a.extend_from_slice(s.schema().attrs());
    let mut set = BTreeSet::new();
    for l in r.iter() {
        for t in s.iter() {
            let mut row = l.to_vec();
            row.extend(t.iter().copied());
            set.insert(row);
        }
    }
    (Schema::new(a), set)
}

fn o_theta_join(r: &Relation, s: &Relation, pred: &Pred) -> OracleRel {
    let (schema, all) = o_product(r, s);
    let compiled = pred.compile(&schema).unwrap();
    let set = all.into_iter().filter(|t| compiled.eval(t)).collect();
    (schema, set)
}

fn o_natural_join(r: &Relation, s: &Relation) -> OracleRel {
    let common = r.schema().common(s.schema());
    let extra: Vec<Attr> = s.schema().minus(&common);
    let mut a = r.schema().attrs().to_vec();
    a.extend(extra.iter().cloned());
    let mut set = BTreeSet::new();
    for l in r.iter() {
        for t in s.iter() {
            let agree = common
                .iter()
                .all(|c| l[r.schema().index_of(c).unwrap()] == t[s.schema().index_of(c).unwrap()]);
            if agree {
                let mut row = l.to_vec();
                for e in &extra {
                    row.push(t[s.schema().index_of(e).unwrap()]);
                }
                set.insert(row);
            }
        }
    }
    (Schema::new(a), set)
}

fn o_semijoin(r: &Relation, s: &Relation) -> OracleRel {
    let common = r.schema().common(s.schema());
    let set = r
        .iter()
        .filter(|l| {
            s.iter().any(|t| {
                common.iter().all(|c| {
                    l[r.schema().index_of(c).unwrap()] == t[s.schema().index_of(c).unwrap()]
                })
            })
        })
        .map(|t| t.to_vec())
        .collect();
    (r.schema().clone(), set)
}

/// Classical definition: `R ÷ S = π_A(R) − π_A(π_A(R) × S − R)`.
fn o_divide(r: &Relation, s: &Relation) -> OracleRel {
    let a: Vec<Attr> = r.schema().minus(s.schema().attrs());
    let (pa_schema, pa) = o_project(r, &a);
    let r_set: BTreeSet<Vec<Value>> = r
        .iter()
        .map(|t| {
            // Reorder into A ++ B order for comparison with the product.
            let mut row: Vec<Value> = a
                .iter()
                .map(|x| t[r.schema().index_of(x).unwrap()])
                .collect();
            for x in s.schema().attrs() {
                row.push(t[r.schema().index_of(x).unwrap()]);
            }
            row
        })
        .collect();
    let mut missing_a = BTreeSet::new();
    for pa_row in &pa {
        for b_row in s.iter() {
            let mut row = pa_row.clone();
            row.extend(b_row.iter().copied());
            if !r_set.contains(&row) {
                missing_a.insert(pa_row.clone());
            }
        }
    }
    (
        pa_schema,
        pa.into_iter().filter(|t| !missing_a.contains(t)).collect(),
    )
}

fn o_union(r: &Relation, s: &Relation) -> OracleRel {
    let (schema, mut set) = to_oracle(r);
    set.extend(aligned_rows(r, s));
    (schema, set)
}

fn o_intersect(r: &Relation, s: &Relation) -> OracleRel {
    let (schema, l) = to_oracle(r);
    let right = aligned_rows(r, s);
    (schema, l.intersection(&right).cloned().collect())
}

fn o_difference(r: &Relation, s: &Relation) -> OracleRel {
    let (schema, l) = to_oracle(r);
    let right = aligned_rows(r, s);
    (schema, l.difference(&right).cloned().collect())
}

/// `s`'s rows reordered into `r`'s column order.
fn aligned_rows(r: &Relation, s: &Relation) -> BTreeSet<Vec<Value>> {
    let idx: Vec<usize> = r
        .schema()
        .attrs()
        .iter()
        .map(|a| s.schema().index_of(a).unwrap())
        .collect();
    s.iter()
        .map(|t| idx.iter().map(|&i| t[i]).collect())
        .collect()
}

// ---- datagen-seeded sweep over every operator ----

fn random_rels(
    seed: u64,
    left: Vec<&'static str>,
    right: Vec<&'static str>,
) -> (Relation, Relation) {
    let spec = datagen::RandomSpec {
        schemas: vec![left, right],
        worlds: 1,
        max_tuples: 14,
        domain: 4,
    };
    let ws = datagen::random_world_set(seed, &spec);
    let w = ws.the_world().expect("single world");
    (w.rel(0).clone(), w.rel(1).clone())
}

#[test]
fn sorted_vec_operators_agree_with_btreeset_oracle() {
    for seed in 0..200u64 {
        // Disjoint schemas: product / theta joins / division.
        let (r, s) = random_rels(seed, vec!["A", "B"], vec!["C", "D"]);
        assert_matches(&r.product(&s).unwrap(), &o_product(&r, &s), "product");

        let equi = Pred::eq_attr("A", "C");
        assert_matches(
            &r.theta_join(&s, &equi).unwrap(),
            &o_theta_join(&r, &s, &equi),
            "equi theta_join",
        );
        let non_equi = Pred::cmp(
            relalg::Operand::Attr(attr("B")),
            relalg::CmpOp::Lt,
            relalg::Operand::Attr(attr("D")),
        );
        assert_matches(
            &r.theta_join(&s, &non_equi).unwrap(),
            &o_theta_join(&r, &s, &non_equi),
            "non-equi theta_join",
        );

        assert_matches(
            &r.select(&Pred::eq_const("A", 1)).unwrap(),
            &o_select(&r, &Pred::eq_const("A", 1)),
            "select",
        );
        assert_matches(
            &r.project(&attrs(&["B"])).unwrap(),
            &o_project(&r, &attrs(&["B"])),
            "project",
        );

        // Division: R[A,B] ÷ S[B] with the B-columns drawn from R itself so
        // the quotient is non-trivial.
        let divisor = s
            .project(&attrs(&["C"]))
            .unwrap()
            .rename(&[(attr("C"), attr("B"))])
            .unwrap();
        assert_matches(
            &r.divide(&divisor).unwrap(),
            &o_divide(&r, &divisor),
            "divide",
        );

        // Shared attribute B: natural join / semijoin / outer pad join.
        let (r2, s2) = random_rels(seed ^ 0xdead_beef, vec!["A", "B"], vec!["B", "C"]);
        assert_matches(
            &r2.natural_join(&s2),
            &o_natural_join(&r2, &s2),
            "natural_join",
        );
        assert_matches(&r2.semijoin(&s2), &o_semijoin(&r2, &s2), "semijoin");

        // Same attribute set (in swapped column order): the set operations
        // exercise the aligned() re-sort path.
        let (u, v) = random_rels(seed ^ 0x5a5a_5a5a, vec!["A", "B"], vec!["B", "A"]);
        assert_matches(&u.union(&v).unwrap(), &o_union(&u, &v), "union");
        assert_matches(&u.intersect(&v).unwrap(), &o_intersect(&u, &v), "intersect");
        assert_matches(
            &u.difference(&v).unwrap(),
            &o_difference(&u, &v),
            "difference",
        );
    }
}

#[test]
fn outer_pad_join_matches_definition_oracle() {
    for seed in 0..200u64 {
        let (r, s) = random_rels(seed, vec!["A", "B"], vec!["B", "C"]);
        // R =⊲⊳ S = (R ⋈ S) ∪ (R − R⋉S) × {⟨c,…,c⟩}, assembled via oracles.
        let (schema, joined) = o_natural_join(&r, &s);
        let (_, matched) = o_semijoin(&r, &s);
        let pad_count = schema.arity() - r.schema().arity();
        let mut set = joined;
        for t in r.iter() {
            if !matched.contains(&t.to_vec()) {
                let mut row = t.to_vec();
                row.extend(std::iter::repeat_n(Value::Pad, pad_count));
                set.insert(row);
            }
        }
        assert_matches(&r.outer_pad_join(&s), &(schema, set), "outer_pad_join");
    }
}

#[test]
fn partition_and_distinct_agree_with_grouping_oracle() {
    for seed in 0..200u64 {
        let (r, _) = random_rels(seed, vec!["A", "B"], vec!["C"]);
        let key = attrs(&["A"]);

        // distinct_values = sorted distinct key sub-tuples.
        let oracle_keys: BTreeSet<Vec<Value>> = r.iter().map(|t| vec![t[0]]).collect();
        let got: Vec<Vec<Value>> = r
            .distinct_values(&key)
            .unwrap()
            .iter()
            .map(|t| t.to_vec())
            .collect();
        assert_eq!(got, oracle_keys.iter().cloned().collect::<Vec<_>>());

        // partition_by: keys in sorted order, partitions = σ_{A=k}(R), each
        // partition strictly sorted; partitions cover R exactly.
        let parts = r.partition_by(&key).unwrap();
        let part_keys: Vec<Vec<Value>> = parts.iter().map(|(k, _)| k.to_vec()).collect();
        assert_eq!(part_keys, got, "partition keys");
        let mut covered = 0;
        for (k, part) in &parts {
            let sel = r.select(&Pred::eq_const("A", k[0])).unwrap();
            assert_eq!(part, &sel, "partition content for key {k:?}");
            covered += part.len();
        }
        assert_eq!(covered, r.len(), "partitions cover the relation");
    }
}

// ---- proptest-shim edge cases (empty inputs, heavy duplication) ----

fn rel_from_pairs(schema: &[&str], rows: &[(i64, i64)]) -> Relation {
    Relation::from_rows(
        Schema::of(schema),
        rows.iter()
            .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)]),
    )
    .unwrap()
}

fn tight_pairs() -> impl Strategy<Value = Vec<(i64, i64)>> {
    // Tiny domain: many duplicates, frequent total overlap, empty inputs.
    proptest::collection::vec((0i64..3, 0i64..3), 0..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn set_ops_match_oracle_on_tight_domains(a in tight_pairs(), b in tight_pairs()) {
        let r = rel_from_pairs(&["A", "B"], &a);
        let s = rel_from_pairs(&["A", "B"], &b);
        assert_matches(&r.union(&s).unwrap(), &o_union(&r, &s), "union");
        assert_matches(&r.intersect(&s).unwrap(), &o_intersect(&r, &s), "intersect");
        assert_matches(&r.difference(&s).unwrap(), &o_difference(&r, &s), "difference");
        // Swapped-column alignment path.
        let v = rel_from_pairs(&["B", "A"], &b);
        assert_matches(&r.union(&v).unwrap(), &o_union(&r, &v), "union aligned");
        assert_matches(&r.difference(&v).unwrap(), &o_difference(&r, &v), "difference aligned");
    }

    #[test]
    fn joins_match_oracle_on_tight_domains(a in tight_pairs(), b in tight_pairs()) {
        let r = rel_from_pairs(&["A", "B"], &a);
        let s = rel_from_pairs(&["B", "C"], &b);
        assert_matches(&r.natural_join(&s), &o_natural_join(&r, &s), "natural_join");
        assert_matches(&r.semijoin(&s), &o_semijoin(&r, &s), "semijoin");
        let t = rel_from_pairs(&["C", "D"], &b);
        assert_matches(&r.product(&t).unwrap(), &o_product(&r, &t), "product");
        let pred = Pred::eq_attr("A", "C");
        assert_matches(&r.theta_join(&t, &pred).unwrap(), &o_theta_join(&r, &t, &pred), "theta");
        let divisor = t.project(&attrs(&["C"])).unwrap().rename(&[(attr("C"), attr("B"))]).unwrap();
        assert_matches(&r.divide(&divisor).unwrap(), &o_divide(&r, &divisor), "divide");
    }
}

/// Mixed value kinds (Pad < Bool < Int < Str with lexicographic strings)
/// must order identically in storage and oracle.
#[test]
fn mixed_value_kinds_keep_canonical_order() {
    let rows: Vec<Vec<Value>> = vec![
        vec![Value::str("BCN"), Value::Int(2)],
        vec![Value::Pad, Value::Int(9)],
        vec![Value::str("ATL"), Value::Int(1)],
        vec![Value::Bool(true), Value::Int(0)],
        vec![Value::Int(-3), Value::Int(7)],
        vec![Value::str("ATL"), Value::Int(1)], // duplicate
    ];
    let rel = Relation::from_rows(Schema::of(&["X", "N"]), rows.clone()).unwrap();
    let oracle: BTreeSet<Vec<Value>> = rows.into_iter().collect();
    assert_matches(&rel, &(Schema::of(&["X", "N"]), oracle), "mixed kinds");
    assert_eq!(rel.len(), 5);
}
