//! Append-only write-ahead log framing and group commit.
//!
//! # Record format
//!
//! Each record is `[seq u64 LE][len u32 LE][crc64 u64 LE][payload; len]`,
//! where the checksum is CRC-64/XZ over the payload alone (seq and len
//! corruption is caught by the strict `expect_from` sequencing check at
//! read time). Records within one WAL file carry consecutive sequence
//! numbers starting at `base + 1`, where `base` is encoded in the file
//! name (`wal-<base>`), so replay needs no side index.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a prefix of the final record on disk.
//! [`read_records`] stops — without error — at the first record whose
//! header is short, whose payload is short, whose checksum mismatches,
//! or whose sequence breaks the chain; everything before it is valid and
//! everything from it on is discarded. A commit is only acknowledged
//! after its record is fsynced, so a discarded torn record was by
//! construction never acknowledged.
//!
//! # Group commit
//!
//! [`WalWriter::sync_to`] batches concurrent committers into one fsync:
//! the first arrival becomes the leader, captures the current appended
//! high-water mark, and fsyncs once; followers whose records were
//! appended before the capture ride along on the leader's fsync and
//! return without issuing their own.

use std::io;
use std::sync::{Condvar, Mutex};

use crate::{crc64, Env};

const HEADER: usize = 8 + 4 + 8;

/// Maximum record payload length. Enforced at frame time — an oversized
/// record would be acknowledged but then silently discarded as a torn
/// tail at recovery — and again at read time, where a corrupted length
/// field must not cause a multi-gigabyte allocation.
pub const MAX_PAYLOAD: usize = 1 << 30;

/// Frame one WAL record. Fails with `InvalidInput` when the payload
/// exceeds [`MAX_PAYLOAD`], so the commit errors up front instead of
/// being lost at recovery.
pub fn frame_record(seq: u64, payload: &[u8]) -> io::Result<Vec<u8>> {
    if payload.len() > MAX_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "WAL payload of {} bytes exceeds the {MAX_PAYLOAD}-byte record limit",
                payload.len()
            ),
        ));
    }
    let mut rec = Vec::with_capacity(HEADER + payload.len());
    rec.extend_from_slice(&seq.to_le_bytes());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc64(payload).to_le_bytes());
    rec.extend_from_slice(payload);
    Ok(rec)
}

/// Read all valid records of `file`, verifying the sequence chain starts
/// at `expect_from` and increments by one. Stops silently at the first
/// torn or corrupt record; a missing file yields no records. Real I/O
/// errors propagate.
pub fn read_records(
    env: &dyn Env,
    file: &str,
    expect_from: u64,
) -> io::Result<Vec<(u64, Vec<u8>)>> {
    let bytes = match env.read(file) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut expect = expect_from;
    while bytes.len() - pos >= HEADER {
        let seq = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().unwrap()) as usize;
        let crc = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().unwrap());
        if seq != expect || len > MAX_PAYLOAD || bytes.len() - pos - HEADER < len {
            break;
        }
        let payload = &bytes[pos + HEADER..pos + HEADER + len];
        if crc64(payload) != crc {
            break;
        }
        records.push((seq, payload.to_vec()));
        pos += HEADER + len;
        expect += 1;
    }
    Ok(records)
}

#[derive(Debug)]
struct SyncState {
    /// Highest sequence number appended to the file.
    appended: u64,
    /// Highest sequence number known durable.
    synced: u64,
    /// A leader is currently inside `env.sync`.
    syncing: bool,
}

/// Writer half of one WAL file, with group commit.
///
/// Appends must be externally serialized in sequence order (the engine's
/// writer lock does this); [`WalWriter::sync_to`] may be called from any
/// number of threads concurrently.
#[derive(Debug)]
pub struct WalWriter<E: Env + ?Sized> {
    env: std::sync::Arc<E>,
    file: String,
    state: Mutex<SyncState>,
    cond: Condvar,
}

impl<E: Env + ?Sized> WalWriter<E> {
    /// A writer for `file`, whose last already-durable record (or the
    /// covering snapshot) has sequence `last_seq`.
    pub fn create(env: std::sync::Arc<E>, file: String, last_seq: u64) -> Self {
        WalWriter {
            env,
            file,
            state: Mutex::new(SyncState {
                appended: last_seq,
                synced: last_seq,
                syncing: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// The WAL file this writer appends to.
    pub fn file(&self) -> &str {
        &self.file
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SyncState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append the record for `seq`. Not yet durable — pair with
    /// [`WalWriter::sync_to`]. Callers must append in sequence order.
    /// Fails without writing anything when the payload exceeds
    /// [`MAX_PAYLOAD`].
    pub fn append(&self, seq: u64, payload: &[u8]) -> io::Result<()> {
        let rec = frame_record(seq, payload)?;
        {
            let state = self.lock();
            debug_assert_eq!(seq, state.appended + 1, "WAL appends must be sequential");
        }
        self.env.append(&self.file, &rec)?;
        self.lock().appended = seq;
        Ok(())
    }

    /// Block until every record up to and including `seq` is durable,
    /// issuing at most one fsync shared by all concurrent callers
    /// (group commit). Returns the fsync error if it fails.
    pub fn sync_to(&self, seq: u64) -> io::Result<()> {
        let mut state = self.lock();
        loop {
            if state.synced >= seq {
                return Ok(());
            }
            if state.syncing {
                // A leader is in flight; wait for its verdict and
                // re-check (we may need to lead a follow-up fsync if our
                // record was appended after the leader's capture).
                state = self.cond.wait(state).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // Become the leader: capture the high-water mark, fsync
            // outside the lock so followers can enqueue.
            let target = state.appended;
            state.syncing = true;
            drop(state);
            let result = self.env.sync(&self.file);
            state = self.lock();
            state.syncing = false;
            if let Err(e) = result {
                self.cond.notify_all();
                return Err(e);
            }
            state.synced = state.synced.max(target);
            self.cond.notify_all();
        }
    }

    /// Make everything appended so far durable.
    pub fn sync_all(&self) -> io::Result<()> {
        let appended = self.lock().appended;
        self.sync_to(appended)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::SimEnv;

    #[test]
    fn records_round_trip() {
        let env = SimEnv::new();
        let w = WalWriter::create(Arc::new(env.clone()), "wal-0".into(), 0);
        w.append(1, b"first").unwrap();
        w.append(2, b"second").unwrap();
        w.sync_to(2).unwrap();
        let recs = read_records(&env, "wal-0", 1).unwrap();
        assert_eq!(recs, vec![(1, b"first".to_vec()), (2, b"second".to_vec())]);
        // Missing file: empty, not an error.
        assert!(read_records(&env, "wal-9", 1).unwrap().is_empty());
    }

    #[test]
    fn oversized_payload_is_rejected_at_append() {
        let env = SimEnv::new();
        let w = WalWriter::create(Arc::new(env.clone()), "wal-0".into(), 0);
        // The size check precedes the checksum, so the zero pages of this
        // allocation are never touched.
        let big = vec![0u8; MAX_PAYLOAD + 1];
        let err = w.append(1, &big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Nothing was written: the file does not exist and sequence 1 is
        // still free for a well-sized record.
        assert!(read_records(&env, "wal-0", 1).unwrap().is_empty());
        w.append(1, b"fits").unwrap();
        w.sync_to(1).unwrap();
        assert_eq!(
            read_records(&env, "wal-0", 1).unwrap(),
            vec![(1, b"fits".to_vec())]
        );
    }

    #[test]
    fn torn_tail_is_discarded_at_every_cut() {
        let env = SimEnv::new();
        let w = WalWriter::create(Arc::new(env.clone()), "wal-0".into(), 0);
        w.append(1, b"keep me").unwrap();
        w.append(2, b"torn").unwrap();
        w.sync_to(2).unwrap();
        let full = env.read("wal-0").unwrap();
        let first_len = HEADER + b"keep me".len();
        // Cut the file at every byte boundary inside the second record:
        // record 1 must always survive, record 2 only when complete.
        for cut in first_len..full.len() {
            let env2 = SimEnv::new();
            env2.append("wal-0", &full[..cut]).unwrap();
            let recs = read_records(&env2, "wal-0", 1).unwrap();
            assert_eq!(recs.len(), 1, "cut at {cut}");
            assert_eq!(recs[0], (1, b"keep me".to_vec()));
        }
    }

    #[test]
    fn corrupt_payload_or_broken_chain_stops_replay() {
        let env = SimEnv::new();
        let w = WalWriter::create(Arc::new(env.clone()), "wal-0".into(), 0);
        w.append(1, b"aaaa").unwrap();
        w.append(2, b"bbbb").unwrap();
        w.sync_to(2).unwrap();
        // Flip a byte in record 2's payload.
        let mut bytes = env.read("wal-0").unwrap();
        let off = (HEADER + 4) + HEADER; // start of second payload
        bytes[off] ^= 0xFF;
        let env2 = SimEnv::new();
        env2.append("wal-0", &bytes).unwrap();
        assert_eq!(read_records(&env2, "wal-0", 1).unwrap().len(), 1);
        // Wrong starting sequence: nothing replays.
        assert!(read_records(&env, "wal-0", 5).unwrap().is_empty());
    }

    #[test]
    fn group_commit_batches_concurrent_syncs() {
        // Sequential baseline: every sync_to issues its own fsync.
        let env = SimEnv::new();
        let w = WalWriter::create(Arc::new(env.clone()), "wal-0".into(), 0);
        for seq in 1..=4 {
            w.append(seq, b"x").unwrap();
            w.sync_to(seq).unwrap();
        }
        assert_eq!(env.sync_count(), 4);

        // Batched: append all four, then everyone waits on the last —
        // one fsync covers them all.
        let env = SimEnv::new();
        let w = Arc::new(WalWriter::create(Arc::new(env.clone()), "wal-0".into(), 0));
        for seq in 1..=4 {
            w.append(seq, b"x").unwrap();
        }
        let handles: Vec<_> = (1..=4u64)
            .map(|seq| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || w.sync_to(seq).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            env.sync_count() <= 2,
            "4 concurrent commits should share fsyncs, got {}",
            env.sync_count()
        );
    }
}
