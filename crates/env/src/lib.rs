//! Storage environment abstraction for the world-set database.
//!
//! Durability code never touches `std::fs` directly: it goes through the
//! [`Env`] trait, which models the small set of filesystem operations the
//! WAL and snapshot layers need (append, fsync, atomic whole-file replace,
//! list, remove). Two implementations ship:
//!
//! * [`StdEnv`] — the real filesystem, rooted at a data directory.
//! * [`SimEnv`] — a deterministic in-memory filesystem with *injectable
//!   crash faults*: at a chosen operation index the simulated process
//!   "crashes", every file rolls back to its last-synced prefix (plus an
//!   optional tail of unsynced bytes, modelling a torn write), and all
//!   further I/O fails. [`SimEnv::recovered`] then hands back the disk
//!   image a restarted process would observe.
//!
//! This is the `sim`/`stdenv` split: every crash-recovery test is a
//! reproducible `(operation index, torn-bytes)` pair instead of a flaky
//! kill loop.
//!
//! The crate also owns the two on-disk framings built on `Env`:
//!
//! * [`wal`] — append-only log records `[seq u64 LE][len u32 LE]
//!   [crc64 u64 LE][payload]`, with group commit ([`wal::WalWriter`]).
//! * snapshot files — `"WSNP"` magic, format version, crc64 of the body
//!   ([`write_snapshot_file`] / [`read_snapshot_file`]), written via
//!   `write_atomic` so a snapshot is either entirely present or absent.
//!
//! File naming is flat: `snap-<seq, zero-padded>` and
//! `wal-<base seq, zero-padded>`, so lexicographic order of [`Env::list`]
//! output is sequence order.

use std::fmt::Debug;
use std::io;

mod sim;
mod std_env;
pub mod wal;

pub use sim::{Fault, SimEnv};
pub use std_env::StdEnv;

/// The filesystem surface durability code is allowed to use.
///
/// All names are flat (no directories); implementations map them into a
/// single root. Operations are atomic at the granularity the trait
/// promises and nothing more: [`Env::append`] may be torn on crash at any
/// byte, while [`Env::write_atomic`] and [`Env::remove`] are all-or-nothing.
/// Durability of appended bytes is only guaranteed after [`Env::sync`]
/// returns `Ok` — the WAL's commit acknowledgement hinges on exactly this.
pub trait Env: Send + Sync + Debug {
    /// Read an entire file. `ErrorKind::NotFound` if it does not exist.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Append bytes to a file, creating it if absent. Appended bytes are
    /// *not* durable until a subsequent [`Env::sync`] succeeds.
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Make all previously appended bytes of `name` durable (fsync).
    fn sync(&self, name: &str) -> io::Result<()>;

    /// Atomically replace the contents of `name` with `data`
    /// (write-temp + rename + directory sync). After `Ok`, the new
    /// contents are durable; on crash the old contents (or absence)
    /// survive intact — never a mix.
    fn write_atomic(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Delete a file. Removing a non-existent file is `Ok` (idempotent).
    fn remove(&self, name: &str) -> io::Result<()>;

    /// List all file names, sorted lexicographically.
    fn list(&self) -> io::Result<Vec<String>>;
}

/// CRC-64/ECMA-182 in its reflected form (poly `0xC96C_5795_D787_0F42`),
/// the checksum guarding WAL records and snapshot bodies.
pub fn crc64(data: &[u8]) -> u64 {
    const TABLE: [u64; 256] = crc64_table();
    let mut crc = !0u64;
    for &b in data {
        crc = TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

const fn crc64_table() -> [u64; 256] {
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Name of the snapshot file covering all commits up to and including `seq`.
pub fn snap_file_name(seq: u64) -> String {
    format!("snap-{seq:020}")
}

/// Name of the WAL file whose first record has sequence `base + 1`.
pub fn wal_file_name(base: u64) -> String {
    format!("wal-{base:020}")
}

/// Parse a `snap-<seq>` file name back into its sequence number.
pub fn parse_snap_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?.parse().ok()
}

/// Parse a `wal-<base>` file name back into its base sequence number.
pub fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.parse().ok()
}

const SNAP_MAGIC: &[u8; 4] = b"WSNP";
const SNAP_VERSION: u16 = 1;

/// Frame `body` as a snapshot file (`WSNP` magic, version, crc64) and
/// write it atomically as `name`.
pub fn write_snapshot_file(env: &dyn Env, name: &str, body: &[u8]) -> io::Result<()> {
    let mut framed = Vec::with_capacity(body.len() + 14);
    framed.extend_from_slice(SNAP_MAGIC);
    framed.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    framed.extend_from_slice(&crc64(body).to_le_bytes());
    framed.extend_from_slice(body);
    env.write_atomic(name, &framed)
}

/// Read a snapshot file and return its verified body. Any framing
/// violation — bad magic, unknown version, checksum mismatch — is
/// `ErrorKind::InvalidData`; a missing file is `ErrorKind::NotFound`.
pub fn read_snapshot_file(env: &dyn Env, name: &str) -> io::Result<Vec<u8>> {
    let bytes = env.read(name)?;
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {msg}"));
    if bytes.len() < 14 {
        return Err(bad("snapshot file too short"));
    }
    if &bytes[0..4] != SNAP_MAGIC {
        return Err(bad("bad snapshot magic"));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != SNAP_VERSION {
        return Err(bad(&format!("unsupported snapshot version {version}")));
    }
    let want = u64::from_le_bytes(bytes[6..14].try_into().unwrap());
    let body = &bytes[14..];
    if crc64(body) != want {
        return Err(bad("snapshot checksum mismatch"));
    }
    Ok(body.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn file_names_sort_in_seq_order() {
        assert!(snap_file_name(9) < snap_file_name(10));
        assert!(wal_file_name(999) < wal_file_name(1000));
        assert_eq!(parse_snap_name(&snap_file_name(42)), Some(42));
        assert_eq!(parse_wal_name(&wal_file_name(42)), Some(42));
        assert_eq!(parse_snap_name("wal-000"), None);
        assert_eq!(parse_wal_name("wal-abc"), None);
    }

    #[test]
    fn snapshot_framing_round_trip_and_rejection() {
        let env = SimEnv::new();
        write_snapshot_file(&env, "snap-x", b"hello world").unwrap();
        assert_eq!(read_snapshot_file(&env, "snap-x").unwrap(), b"hello world");

        // Flip a body byte: checksum mismatch.
        let mut raw = env.read("snap-x").unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        env.write_atomic("snap-y", &raw).unwrap();
        let err = read_snapshot_file(&env, "snap-y").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Truncated below the header.
        env.write_atomic("snap-z", b"WSNP").unwrap();
        let err = read_snapshot_file(&env, "snap-z").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Missing file.
        let err = read_snapshot_file(&env, "snap-none").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
