//! A deterministic in-memory [`Env`] with injectable crash faults.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::Env;

/// A crash injected at a precise point in the I/O stream.
///
/// Every mutating operation ([`Env::append`], [`Env::sync`],
/// [`Env::write_atomic`], [`Env::remove`]) increments an operation
/// counter; when the counter reaches `at_op` the simulated process
/// crashes *instead of* performing that operation. On crash every file
/// rolls back to its last-synced prefix — except the file the faulting
/// operation targeted, which additionally keeps up to `keep_unsynced`
/// bytes of its unsynced tail, modelling a torn append that partially
/// reached the platter. Use `keep_unsynced: usize::MAX` for "the append
/// landed but the fsync never happened".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Zero-based index of the mutating operation to crash on.
    pub at_op: u64,
    /// Unsynced bytes of the target file surviving the crash.
    pub keep_unsynced: usize,
}

#[derive(Debug, Clone)]
struct SimFile {
    data: Vec<u8>,
    /// Prefix length guaranteed durable (last successful sync, or the
    /// whole file for atomic writes).
    synced: usize,
}

#[derive(Debug)]
struct SimState {
    files: BTreeMap<String, SimFile>,
    fault: Option<Fault>,
    crashed: bool,
    ops: u64,
    syncs: u64,
}

/// Deterministic in-memory filesystem with crash injection.
///
/// Cloning shares the underlying state, so the env handed to an `Engine`
/// and the handle kept by the test observe the same "disk". After a
/// crash every operation fails with `ErrorKind::Other("simulated
/// crash")`; [`SimEnv::recovered`] returns a fresh, fault-free env
/// holding exactly the bytes a restarted process would read.
#[derive(Debug, Clone)]
pub struct SimEnv {
    state: Arc<Mutex<SimState>>,
    /// Operation counter mirror readable without the lock (for tests
    /// enumerating fault points from a recorded fault-free run).
    ops: Arc<AtomicU64>,
}

impl Default for SimEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl SimEnv {
    /// An empty simulated disk with no fault armed.
    pub fn new() -> Self {
        SimEnv {
            state: Arc::new(Mutex::new(SimState {
                files: BTreeMap::new(),
                fault: None,
                crashed: false,
                ops: 0,
                syncs: 0,
            })),
            ops: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Arm a crash fault. Pass `None` to disarm.
    pub fn set_fault(&self, fault: Option<Fault>) {
        self.lock().fault = fault;
    }

    /// Total mutating operations performed so far. Run a trace fault-free
    /// first, read this, then re-run with `at_op` in `0..op_count()`.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Number of successful [`Env::sync`] calls (group-commit batching is
    /// observable as fewer syncs than commits).
    pub fn sync_count(&self) -> u64 {
        self.lock().syncs
    }

    /// Has the armed fault fired?
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// The disk image after the crash: a fresh fault-free `SimEnv` whose
    /// files hold exactly the surviving bytes. Also valid before any
    /// crash (a clean copy of the current durable + volatile state, as
    /// `read` would see it).
    pub fn recovered(&self) -> SimEnv {
        let state = self.lock();
        let fresh = SimEnv::new();
        fresh.lock().files = state.files.clone();
        fresh
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SimState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Count a mutating op; if the armed fault is due, crash and return
    /// the crash error. `target` is the file whose unsynced tail may
    /// partially survive; `target_after_append` is the data the target
    /// would hold *if* the op were an append that tore (None for
    /// non-append ops, which are all-or-nothing and simply don't happen).
    fn tick(
        state: &mut SimState,
        ops: &AtomicU64,
        target: &str,
        torn_data: Option<&[u8]>,
    ) -> io::Result<()> {
        if state.crashed {
            return Err(crash_err());
        }
        let op = state.ops;
        state.ops += 1;
        ops.store(state.ops, Ordering::SeqCst);
        let Some(fault) = state.fault else {
            return Ok(());
        };
        if op < fault.at_op {
            return Ok(());
        }
        // Crash now: every file truncates to its synced prefix; the
        // target of a torn append first gains the appended bytes, then
        // keeps up to keep_unsynced of its unsynced tail.
        state.crashed = true;
        if let Some(extra) = torn_data {
            state
                .files
                .entry(target.to_string())
                .or_insert(SimFile {
                    data: Vec::new(),
                    synced: 0,
                })
                .data
                .extend_from_slice(extra);
        }
        let keep = fault.keep_unsynced;
        for (name, file) in state.files.iter_mut() {
            let mut retain = file.synced;
            if name == target {
                retain = file.data.len().min(file.synced.saturating_add(keep));
            }
            file.data.truncate(retain);
            file.synced = file.data.len().min(file.synced);
        }
        // A file that was never made durable loses its directory entry
        // too: created-but-unsynced files vanish entirely.
        state
            .files
            .retain(|_, f| !(f.data.is_empty() && f.synced == 0));
        Err(crash_err())
    }
}

fn crash_err() -> io::Error {
    io::Error::other("simulated crash")
}

impl Env for SimEnv {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let state = self.lock();
        if state.crashed {
            return Err(crash_err());
        }
        match state.files.get(name) {
            Some(f) => Ok(f.data.clone()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file {name}"),
            )),
        }
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        Self::tick(&mut state, &self.ops, name, Some(data))?;
        state
            .files
            .entry(name.to_string())
            .or_insert(SimFile {
                data: Vec::new(),
                synced: 0,
            })
            .data
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let mut state = self.lock();
        Self::tick(&mut state, &self.ops, name, None)?;
        if let Some(f) = state.files.get_mut(name) {
            f.synced = f.data.len();
        }
        state.syncs += 1;
        Ok(())
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        // All-or-nothing: a crash on this op leaves the old file intact.
        Self::tick(&mut state, &self.ops, name, None)?;
        state.files.insert(
            name.to_string(),
            SimFile {
                data: data.to_vec(),
                synced: data.len(),
            },
        );
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let mut state = self.lock();
        Self::tick(&mut state, &self.ops, name, None)?;
        state.files.remove(name);
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let state = self.lock();
        if state.crashed {
            return Err(crash_err());
        }
        Ok(state.files.keys().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faultless_ops_behave_like_a_filesystem() {
        let env = SimEnv::new();
        env.append("w", b"abc").unwrap();
        env.append("w", b"def").unwrap();
        assert_eq!(env.read("w").unwrap(), b"abcdef");
        env.write_atomic("s", b"snap").unwrap();
        assert_eq!(env.list().unwrap(), vec!["s".to_string(), "w".to_string()]);
        env.remove("s").unwrap();
        env.remove("s").unwrap();
        assert_eq!(env.read("s").unwrap_err().kind(), io::ErrorKind::NotFound);
        assert_eq!(env.op_count(), 5);
    }

    #[test]
    fn crash_rolls_back_to_synced_prefix() {
        let env = SimEnv::new();
        env.append("w", b"aaa").unwrap();
        env.sync("w").unwrap();
        env.append("w", b"bbb").unwrap();
        // Crash on the next op (op index 3), keeping no unsynced bytes.
        env.set_fault(Some(Fault {
            at_op: 3,
            keep_unsynced: 0,
        }));
        assert!(env.append("w", b"ccc").is_err());
        assert!(env.crashed());
        assert!(env.read("w").is_err(), "post-crash I/O must fail");
        let after = env.recovered();
        assert_eq!(after.read("w").unwrap(), b"aaa");
    }

    #[test]
    fn torn_append_keeps_partial_tail_of_target_only() {
        let env = SimEnv::new();
        env.append("w", b"aa").unwrap();
        env.sync("w").unwrap();
        env.append("other", b"zz").unwrap();
        // Crash on the append of "ccdd" to w, keeping 3 unsynced bytes.
        env.set_fault(Some(Fault {
            at_op: 3,
            keep_unsynced: 3,
        }));
        assert!(env.append("w", b"ccdd").is_err());
        let after = env.recovered();
        assert_eq!(after.read("w").unwrap(), b"aaccd");
        // "other" was never synced: entirely gone.
        assert_eq!(
            after.read("other").unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
    }

    #[test]
    fn keep_unsynced_max_means_append_landed_without_fsync() {
        let env = SimEnv::new();
        env.append("w", b"aa").unwrap();
        env.sync("w").unwrap();
        env.set_fault(Some(Fault {
            at_op: 2,
            keep_unsynced: usize::MAX,
        }));
        assert!(env.append("w", b"bb").is_err());
        assert_eq!(env.recovered().read("w").unwrap(), b"aabb");
    }

    #[test]
    fn crash_on_write_atomic_preserves_old_contents() {
        let env = SimEnv::new();
        env.write_atomic("s", b"old").unwrap();
        env.set_fault(Some(Fault {
            at_op: 1,
            keep_unsynced: usize::MAX,
        }));
        assert!(env.write_atomic("s", b"new").is_err());
        assert_eq!(env.recovered().read("s").unwrap(), b"old");
    }

    #[test]
    fn crash_on_remove_preserves_file() {
        let env = SimEnv::new();
        env.write_atomic("s", b"keep").unwrap();
        env.set_fault(Some(Fault {
            at_op: 1,
            keep_unsynced: 0,
        }));
        assert!(env.remove("s").is_err());
        assert_eq!(env.recovered().read("s").unwrap(), b"keep");
    }

    #[test]
    fn clones_share_the_disk() {
        let env = SimEnv::new();
        let alias = env.clone();
        env.append("w", b"x").unwrap();
        assert_eq!(alias.read("w").unwrap(), b"x");
        assert_eq!(alias.op_count(), 1);
    }
}
