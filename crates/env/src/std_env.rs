//! The real-filesystem [`Env`]: flat files under one data directory.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::Env;

/// [`Env`] backed by `std::fs`, rooted at a data directory.
///
/// Append handles are cached so the WAL appends to one open file
/// descriptor instead of re-opening per record; [`Env::sync`] fsyncs that
/// descriptor, and creating a file through [`Env::append`] fsyncs the
/// directory so the new entry itself survives power loss.
/// [`Env::write_atomic`] goes through a `.tmp` sibling, a
/// rename, and an fsync of the directory, so snapshots are crash-atomic
/// on POSIX filesystems.
#[derive(Debug)]
pub struct StdEnv {
    root: PathBuf,
    appenders: Mutex<HashMap<String, File>>,
}

impl StdEnv {
    /// Open (creating if needed) the data directory at `root`.
    pub fn new(root: impl AsRef<Path>) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(StdEnv {
            root,
            appenders: Mutex::new(HashMap::new()),
        })
    }

    /// The data directory this env is rooted at.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Needed for rename/create durability; best-effort on platforms
        // where directories cannot be opened.
        match File::open(&self.root) {
            Ok(dir) => dir.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

impl Env for StdEnv {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(self.path(name))?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut appenders = self.appenders.lock().unwrap_or_else(|e| e.into_inner());
        let file = match appenders.get_mut(name) {
            Some(f) => f,
            None => {
                let path = self.path(name);
                let created = !path.exists();
                let f = OpenOptions::new().create(true).append(true).open(&path)?;
                if created {
                    // Persist the new directory entry now: Env::sync only
                    // fsyncs the descriptor, and an entry lost on power
                    // failure would take every acknowledged commit in
                    // this file with it.
                    self.sync_dir()?;
                }
                appenders.entry(name.to_string()).or_insert(f)
            }
        };
        file.write_all(data)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let appenders = self.appenders.lock().unwrap_or_else(|e| e.into_inner());
        match appenders.get(name) {
            Some(f) => f.sync_data(),
            // Nothing appended through us: sync whatever is on disk.
            None => match File::open(self.path(name)) {
                Ok(f) => f.sync_data(),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(e),
            },
        }
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path(name))?;
        // Drop any stale cached append handle for the replaced file.
        self.appenders
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name);
        self.sync_dir()
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.appenders
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name);
        match fs::remove_file(self.path(name)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    if !name.ends_with(".tmp") {
                        names.push(name);
                    }
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wsdb-env-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_read_list_remove() {
        let root = temp_root("basic");
        let env = StdEnv::new(&root).unwrap();
        env.append("a", b"one").unwrap();
        env.append("a", b"two").unwrap();
        env.sync("a").unwrap();
        env.write_atomic("b", b"atomic").unwrap();
        assert_eq!(env.read("a").unwrap(), b"onetwo");
        assert_eq!(env.read("b").unwrap(), b"atomic");
        assert_eq!(env.list().unwrap(), vec!["a".to_string(), "b".to_string()]);
        env.remove("a").unwrap();
        env.remove("a").unwrap(); // idempotent
        assert_eq!(env.read("a").unwrap_err().kind(), io::ErrorKind::NotFound);
        assert_eq!(env.list().unwrap(), vec!["b".to_string()]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn write_atomic_replaces_and_resets_appender() {
        let root = temp_root("replace");
        let env = StdEnv::new(&root).unwrap();
        env.append("f", b"old").unwrap();
        env.write_atomic("f", b"new").unwrap();
        assert_eq!(env.read("f").unwrap(), b"new");
        // Appending after replacement appends to the new contents.
        env.append("f", b"+tail").unwrap();
        assert_eq!(env.read("f").unwrap(), b"new+tail");
        let _ = fs::remove_dir_all(&root);
    }
}
