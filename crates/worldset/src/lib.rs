//! The possible-worlds data model of "From Complete to Incomplete
//! Information and Back" (SIGMOD 2007).
//!
//! An *incomplete database* is a finite **world-set**: a set of complete
//! database instances ("worlds") over a common schema `Σ = ⟨R₁, …, R_k⟩`.
//! Query evaluation in World-set Algebra maps world-sets to world-sets,
//! appending an answer relation `R_{k+1}` to every world (Figure 3 of the
//! paper); this crate provides the [`World`] / [`WorldSet`] types those
//! semantics operate on, plus world-set isomorphism (Definition 4.3) used to
//! state and test genericity.

mod iso;
mod world;

pub use iso::{active_domain, Bijection};
pub use world::{pair_worlds, World, WorldSet};
