//! World-set isomorphism (Definition 4.3) and domain bijections.
//!
//! Genericity (Definition 4.4, Proposition 4.5) states that for isomorphic
//! world-sets `A ≅θ A′`, query answers are isomorphic under the same `θ`:
//! `q(A) ≅θ q(A′)`. The [`Bijection`] type applies a domain permutation to
//! relations, worlds and world-sets so property tests can check exactly
//! this.

use std::collections::{BTreeMap, BTreeSet};

use relalg::{Relation, Result, Value};

use crate::{World, WorldSet};

/// All constants occurring in any relation of any world — the active domain
/// `dom(A)` of a world-set.
pub fn active_domain(ws: &WorldSet) -> BTreeSet<Value> {
    let mut dom = BTreeSet::new();
    for w in ws.iter() {
        for r in w.rels() {
            for t in r.iter() {
                dom.extend(t.iter().cloned());
            }
        }
    }
    dom
}

/// A bijection `θ : dom → dom′` between domain values. Values not in the map
/// are fixed points (the identity outside the support), which keeps the
/// definition total as required by Definition 4.3.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bijection {
    fwd: BTreeMap<Value, Value>,
    bwd: BTreeMap<Value, Value>,
}

impl Bijection {
    /// The identity bijection.
    pub fn identity() -> Bijection {
        Bijection::default()
    }

    /// Build from pairs; returns `None` if the pairs are not one-to-one.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Value, Value)>) -> Option<Bijection> {
        let mut fwd = BTreeMap::new();
        let mut bwd = BTreeMap::new();
        for (a, b) in pairs {
            if fwd.insert(a, b).is_some() {
                return None;
            }
            if bwd.insert(b, a).is_some() {
                return None;
            }
        }
        Some(Bijection { fwd, bwd })
    }

    /// The inverse bijection `θ⁻¹`.
    pub fn inverse(&self) -> Bijection {
        Bijection {
            fwd: self.bwd.clone(),
            bwd: self.fwd.clone(),
        }
    }

    /// Image of one value.
    pub fn apply_value(&self, v: &Value) -> Value {
        self.fwd.get(v).cloned().unwrap_or(*v)
    }

    /// Image of a relation (tuple-wise).
    pub fn apply_relation(&self, r: &Relation) -> Result<Relation> {
        Relation::from_rows(
            r.schema().clone(),
            r.iter().map(|t| {
                t.iter()
                    .map(|v| self.apply_value(v))
                    .collect::<relalg::Tuple>()
            }),
        )
    }

    /// Image of a world.
    pub fn apply_world(&self, w: &World) -> Result<World> {
        let rels: Result<Vec<Relation>> = w.rels().iter().map(|r| self.apply_relation(r)).collect();
        Ok(World::new(rels?))
    }

    /// Image of a world-set: `θ(A) = {θ(I) | I ∈ A}`. Worlds map through
    /// the bijection independently, so this runs on the execution pool.
    pub fn apply(&self, ws: &WorldSet) -> Result<WorldSet> {
        ws.par_map_worlds(|w| self.apply_world(w))
    }

    /// Definition 4.3: `A ≅θ A′` iff `θ(A) ⊆ A′` and `θ⁻¹(A′) ⊆ A`
    /// (equivalently `θ(A) = A′` for finite sets).
    pub fn isomorphic(&self, a: &WorldSet, b: &WorldSet) -> Result<bool> {
        Ok(self.apply(a)? == *b && self.inverse().apply(b)? == *a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(vals: &[&[i64]]) -> WorldSet {
        let worlds = vals
            .iter()
            .map(|vs| {
                World::new(vec![Relation::table(
                    &["A"],
                    &vs.iter().map(std::slice::from_ref).collect::<Vec<_>>(),
                )])
            })
            .collect::<Vec<_>>();
        WorldSet::from_worlds(vec!["R".into()], worlds).unwrap()
    }

    #[test]
    fn active_domain_collects() {
        let a = ws(&[&[1, 2], &[3]]);
        let dom = active_domain(&a);
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::int(2)));
    }

    #[test]
    fn bijection_must_be_one_to_one() {
        assert!(Bijection::from_pairs(vec![
            (Value::int(1), Value::int(10)),
            (Value::int(2), Value::int(10)),
        ])
        .is_none());
        assert!(Bijection::from_pairs(vec![
            (Value::int(1), Value::int(10)),
            (Value::int(1), Value::int(11)),
        ])
        .is_none());
    }

    #[test]
    fn apply_and_isomorphic() {
        let theta = Bijection::from_pairs(vec![
            (Value::int(1), Value::int(10)),
            (Value::int(2), Value::int(20)),
            (Value::int(3), Value::int(30)),
        ])
        .unwrap();
        let a = ws(&[&[1, 2], &[3]]);
        let b = ws(&[&[10, 20], &[30]]);
        assert!(theta.isomorphic(&a, &b).unwrap());
        assert!(!theta.isomorphic(&a, &ws(&[&[10, 20]])).unwrap());
        assert_eq!(theta.inverse().apply(&b).unwrap(), a);
    }

    #[test]
    fn identity_fixes_everything() {
        let a = ws(&[&[1, 2], &[3]]);
        assert!(Bijection::identity().isomorphic(&a, &a).unwrap());
    }

    #[test]
    fn unmapped_values_are_fixed_points() {
        let theta = Bijection::from_pairs(vec![(Value::int(1), Value::int(9))]).unwrap();
        assert_eq!(theta.apply_value(&Value::int(5)), Value::int(5));
        assert_eq!(theta.apply_value(&Value::int(1)), Value::int(9));
    }
}
