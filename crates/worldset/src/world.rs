use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use relalg::{RelalgError, Relation, Result, Schema};

/// One possible world: a complete database instance, i.e. an ordered tuple
/// of relations `⟨R₁, …, R_k⟩`. Relation *names* live on the enclosing
/// [`WorldSet`], since all worlds share the schema.
///
/// Relations are held behind [`Arc`], so the world-rewriting primitives
/// ([`World::with`], [`World::replace_last`], [`World::drop_last`]) copy a
/// vector of pointers — O(k) reference-count bumps — instead of cloning
/// relation data. This is what makes the Figure-3 semantics affordable when
/// `choice-of` fans a single world out into hundreds: the base relations
/// `R₁…R_k` are shared by every successor world.
#[derive(Clone, Eq, Debug)]
pub struct World {
    rels: Vec<Arc<Relation>>,
}

// Comparisons shortcut on pointer identity before falling back to content:
// worlds produced by fan-out (and by the factorized decode) share their
// unchanged relations by `Arc`, and deduplicating them into a `BTreeSet`
// would otherwise re-compare those shared relations row-by-row on every
// insertion. Pointer equality implies content equality, so the orderings
// are unchanged. `Hash` stays content-based to remain consistent with `Eq`.
impl PartialEq for World {
    fn eq(&self, other: &World) -> bool {
        self.rels.len() == other.rels.len()
            && self
                .rels
                .iter()
                .zip(&other.rels)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}

impl Ord for World {
    fn cmp(&self, other: &World) -> std::cmp::Ordering {
        for (a, b) in self.rels.iter().zip(&other.rels) {
            if Arc::ptr_eq(a, b) {
                continue;
            }
            match a.cmp(b) {
                std::cmp::Ordering::Equal => {}
                o => return o,
            }
        }
        self.rels.len().cmp(&other.rels.len())
    }
}

impl PartialOrd for World {
    fn partial_cmp(&self, other: &World) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for World {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rels.hash(state);
    }
}

impl World {
    /// Build a world from owned relations.
    pub fn new(rels: Vec<Relation>) -> World {
        World {
            rels: rels.into_iter().map(Arc::new).collect(),
        }
    }

    /// Build a world from already-shared relations (no data copied).
    pub fn from_shared(rels: Vec<Arc<Relation>>) -> World {
        World { rels }
    }

    /// Number of relations.
    pub fn arity(&self) -> usize {
        self.rels.len()
    }

    /// The `i`-th relation.
    pub fn rel(&self, i: usize) -> &Relation {
        &self.rels[i]
    }

    /// The `i`-th relation as a shared handle (cheap to clone).
    pub fn rel_shared(&self, i: usize) -> &Arc<Relation> {
        &self.rels[i]
    }

    /// The relations in order, as shared handles.
    pub fn rels(&self) -> &[Arc<Relation>] {
        &self.rels
    }

    /// The last relation — the query answer `R_{k+1}` during evaluation.
    pub fn last(&self) -> &Relation {
        self.rels.last().expect("world with no relations")
    }

    /// The last relation as a shared handle.
    pub fn last_shared(&self) -> &Arc<Relation> {
        self.rels.last().expect("world with no relations")
    }

    /// All relations except the last (the context `⟨R₁,…,R_k⟩`).
    pub fn prefix(&self) -> &[Arc<Relation>] {
        &self.rels[..self.rels.len() - 1]
    }

    /// A copy of this world with one more relation appended. All existing
    /// relations are shared, not cloned.
    pub fn with(&self, rel: impl Into<Arc<Relation>>) -> World {
        let mut rels = self.rels.clone();
        rels.push(rel.into());
        World { rels }
    }

    /// A copy of this world with the last relation replaced (prefix shared).
    pub fn replace_last(&self, rel: impl Into<Arc<Relation>>) -> World {
        let mut rels = self.rels.clone();
        *rels.last_mut().expect("world with no relations") = rel.into();
        World { rels }
    }

    /// A copy of this world with the `i`-th relation replaced; every other
    /// relation is shared.
    pub fn replace_rel(&self, i: usize, rel: impl Into<Arc<Relation>>) -> World {
        let mut rels = self.rels.clone();
        rels[i] = rel.into();
        World { rels }
    }

    /// A copy of this world with the last relation removed (rest shared).
    pub fn drop_last(&self) -> World {
        let mut rels = self.rels.clone();
        rels.pop();
        World { rels }
    }
}

/// A finite set of possible worlds over a shared schema.
///
/// Worlds are deduplicated structurally (the model is a *set* of worlds) and
/// iterate in a deterministic order. The relation-name list is shared and
/// reference-counted; appending an answer relation clones it once.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorldSet {
    rel_names: Arc<Vec<String>>,
    worlds: BTreeSet<World>,
}

impl WorldSet {
    /// The empty world-set (no worlds at all — distinct from a world-set
    /// containing one empty world).
    pub fn empty(rel_names: Vec<String>) -> WorldSet {
        WorldSet {
            rel_names: Arc::new(rel_names),
            worlds: BTreeSet::new(),
        }
    }

    /// A singleton world-set: the complete database `⟨R₁,…,R_k⟩`.
    pub fn single(named_rels: Vec<(&str, Relation)>) -> WorldSet {
        let rel_names = named_rels.iter().map(|(n, _)| n.to_string()).collect();
        let world = World::new(named_rels.into_iter().map(|(_, r)| r).collect());
        WorldSet {
            rel_names: Arc::new(rel_names),
            worlds: [world].into(),
        }
    }

    /// Build from explicit worlds, validating that every world matches the
    /// schema width and that each relation position has a uniform attribute
    /// set across worlds.
    pub fn from_worlds(
        rel_names: Vec<String>,
        worlds: impl IntoIterator<Item = World>,
    ) -> Result<WorldSet> {
        let mut set: BTreeSet<World> = BTreeSet::new();
        let mut schemas: Vec<Option<Schema>> = vec![None; rel_names.len()];
        for w in worlds {
            if w.arity() != rel_names.len() {
                return Err(RelalgError::ArityMismatch {
                    expected: rel_names.len(),
                    got: w.arity(),
                });
            }
            for (i, r) in w.rels().iter().enumerate() {
                match &schemas[i] {
                    None => schemas[i] = Some(r.schema().clone()),
                    Some(s) => {
                        if !s.same_attr_set(r.schema()) {
                            return Err(RelalgError::SchemaMismatch {
                                left: s.clone(),
                                right: r.schema().clone(),
                            });
                        }
                    }
                }
            }
            set.insert(w);
        }
        Ok(WorldSet {
            rel_names: Arc::new(rel_names),
            worlds: set,
        })
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// True iff there are no worlds.
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// The shared relation names.
    pub fn rel_names(&self) -> &[String] {
        &self.rel_names
    }

    /// Index of the relation called `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.rel_names.iter().position(|n| n == name)
    }

    /// Iterate the worlds in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &World> {
        self.worlds.iter()
    }

    /// The worlds as a vector (cloned).
    pub fn worlds(&self) -> Vec<World> {
        self.worlds.iter().cloned().collect()
    }

    /// If this is a singleton world-set, the single world.
    pub fn the_world(&self) -> Option<&World> {
        if self.worlds.len() == 1 {
            self.worlds.iter().next()
        } else {
            None
        }
    }

    /// Extend every world with the relation produced by `f`, naming the new
    /// relation `name`. This is the world-set counterpart of appending the
    /// answer `R_{k+1}` in Figure 3. Generic over the caller's error type;
    /// `f` may return an owned [`Relation`] or a shared `Arc<Relation>` (the
    /// latter lets one relation be appended to every world without copies).
    pub fn extend_with<E, R: Into<Arc<Relation>>>(
        &self,
        name: &str,
        mut f: impl FnMut(&World) -> std::result::Result<R, E>,
    ) -> std::result::Result<WorldSet, E> {
        let mut rel_names = (*self.rel_names).clone();
        rel_names.push(name.to_string());
        let mut worlds = BTreeSet::new();
        for w in &self.worlds {
            worlds.insert(w.with(f(w)?));
        }
        Ok(WorldSet {
            rel_names: Arc::new(rel_names),
            worlds,
        })
    }

    /// Map every world through `f` (schema-preserving transformations;
    /// duplicate results merge). Generic over the caller's error type.
    pub fn map_worlds<E>(
        &self,
        mut f: impl FnMut(&World) -> std::result::Result<World, E>,
    ) -> std::result::Result<WorldSet, E> {
        let mut worlds = BTreeSet::new();
        for w in &self.worlds {
            worlds.insert(f(w)?);
        }
        Ok(WorldSet {
            rel_names: self.rel_names.clone(),
            worlds,
        })
    }

    /// Parallel counterpart of [`WorldSet::map_worlds`]: each world is
    /// transformed by a pool worker (`relalg::pool`, `WSDB_THREADS` knob).
    /// Results are re-collected into the deduplicating world set, so the
    /// output is identical to the sequential variant; the closure must be
    /// `Fn + Sync` rather than `FnMut`.
    pub fn par_map_worlds<E: Send>(
        &self,
        f: impl Fn(&World) -> std::result::Result<World, E> + Sync,
    ) -> std::result::Result<WorldSet, E> {
        let input: Vec<&World> = self.worlds.iter().collect();
        let worlds: BTreeSet<World> = relalg::pool::par_map(&input, |w| f(w))
            .into_iter()
            .collect::<std::result::Result<_, E>>()?;
        Ok(WorldSet {
            rel_names: self.rel_names.clone(),
            worlds,
        })
    }

    /// Parallel counterpart of [`WorldSet::flat_map_worlds`] (world
    /// splitting: choice-of, repair-by-key). Deterministic for the same
    /// reason as [`WorldSet::par_map_worlds`].
    pub fn par_flat_map_worlds<E: Send>(
        &self,
        f: impl Fn(&World) -> std::result::Result<Vec<World>, E> + Sync,
    ) -> std::result::Result<WorldSet, E> {
        let input: Vec<&World> = self.worlds.iter().collect();
        let mut worlds = BTreeSet::new();
        for ws in relalg::pool::par_map(&input, |w| f(w)) {
            worlds.extend(ws?);
        }
        Ok(WorldSet {
            rel_names: self.rel_names.clone(),
            worlds,
        })
    }

    /// Parallel counterpart of [`WorldSet::extend_with`]: evaluate `f` on
    /// every world concurrently and append the produced relation under
    /// `name`.
    pub fn par_extend_with<E: Send, R: Into<Arc<Relation>> + Send>(
        &self,
        name: &str,
        f: impl Fn(&World) -> std::result::Result<R, E> + Sync,
    ) -> std::result::Result<WorldSet, E> {
        let mut rel_names = (*self.rel_names).clone();
        rel_names.push(name.to_string());
        let input: Vec<&World> = self.worlds.iter().collect();
        let worlds: BTreeSet<World> = relalg::pool::par_map(&input, |w| f(w).map(|r| w.with(r)))
            .into_iter()
            .collect::<std::result::Result<_, E>>()?;
        Ok(WorldSet {
            rel_names: Arc::new(rel_names),
            worlds,
        })
    }

    /// Replace every world by zero or more successor worlds (used by
    /// choice-of and repair-by-key, which split worlds). Generic over the
    /// caller's error type.
    pub fn flat_map_worlds<E>(
        &self,
        mut f: impl FnMut(&World) -> std::result::Result<Vec<World>, E>,
    ) -> std::result::Result<WorldSet, E> {
        let mut worlds = BTreeSet::new();
        for w in &self.worlds {
            worlds.extend(f(w)?);
        }
        Ok(WorldSet {
            rel_names: self.rel_names.clone(),
            worlds,
        })
    }

    /// Same world-set with a different shared name list (used when the
    /// answer relation is renamed into place).
    pub fn with_rel_names(&self, rel_names: Vec<String>) -> WorldSet {
        assert_eq!(
            rel_names.len(),
            self.rel_names.len(),
            "renaming must preserve schema width"
        );
        WorldSet {
            rel_names: Arc::new(rel_names),
            worlds: self.worlds.clone(),
        }
    }

    /// Keep only the relations at the listed positions, in the given order
    /// (used by evaluators to discard temporary relations; worlds that
    /// differed only in dropped relations merge).
    pub fn keep_rels(&self, keep: &[usize]) -> WorldSet {
        let rel_names = keep.iter().map(|&i| self.rel_names[i].clone()).collect();
        let worlds = self
            .worlds
            .iter()
            .map(|w| World::from_shared(keep.iter().map(|&i| w.rel_shared(i).clone()).collect()))
            .collect();
        WorldSet {
            rel_names: Arc::new(rel_names),
            worlds,
        }
    }

    /// Drop the last relation from every world (closing an evaluation step;
    /// worlds that only differed in the answer merge).
    pub fn drop_last(&self) -> WorldSet {
        let mut rel_names = (*self.rel_names).clone();
        rel_names.pop();
        WorldSet {
            rel_names: Arc::new(rel_names),
            worlds: self.worlds.iter().map(|w| w.drop_last()).collect(),
        }
    }

    /// The union of the last relation over all worlds (the `poss` closure),
    /// or `None` if the world-set is empty.
    ///
    /// Runs as a pairwise tree reduction on the execution pool
    /// (`relalg::pool::par_reduce`): union is associative and takes the
    /// left operand's attribute order, and the reduction keeps the leftmost
    /// world leftmost, so the result is identical to the sequential fold.
    pub fn union_of_last(&self) -> Result<Option<Relation>> {
        self.reduce_last(|a, b| a.union(b))
    }

    /// The intersection of the last relation over all worlds (the `cert`
    /// closure), or `None` if the world-set is empty. Tree-reduced like
    /// [`WorldSet::union_of_last`].
    pub fn intersect_of_last(&self) -> Result<Option<Relation>> {
        self.reduce_last(|a, b| a.intersect(b))
    }

    fn reduce_last(
        &self,
        merge: impl Fn(&Relation, &Relation) -> Result<Relation> + Sync,
    ) -> Result<Option<Relation>> {
        let lasts: Vec<Arc<Relation>> = self
            .worlds
            .iter()
            .map(|w| w.last_shared().clone())
            .collect();
        let merged = relalg::pool::par_reduce(lasts, |a, b| merge(a, b).map(Arc::new))?;
        Ok(merged.map(Arc::unwrap_or_clone))
    }

    /// Pretty-print all worlds with their relation names.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, w) in self.worlds.iter().enumerate() {
            out.push_str(&format!("── world {} ──\n", i + 1));
            for (name, rel) in self.rel_names.iter().zip(w.rels()) {
                out.push_str(&rel.to_table_string(name));
            }
        }
        out
    }
}

impl fmt::Display for WorldSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// The world-pairing operation discussed in Section 7 of the paper: for
/// every ordered pair of worlds `(I, J)`, a world holding `I`'s relations
/// plus `J`'s relations under primed names. Pairing is *generic* and
/// expressible in relational algebra on inlined representations, but **not**
/// in World-set Algebra: starting from the world-set of all `2ⁿ` subsets of
/// an n-element relation it produces up to `2^{2n}` distinct worlds, more
/// than any fixed WSA query can create (choice-of being the only
/// world-increasing operation). See `tests/sec7_expressiveness.rs`.
pub fn pair_worlds(ws: &WorldSet) -> WorldSet {
    let mut names: Vec<String> = ws.rel_names().to_vec();
    names.extend(ws.rel_names().iter().map(|n| format!("{n}'")));
    // The outer pairing loop fans out over the pool (|worlds|² pairs of
    // pointer-bump concatenations); the set collection dedups as before.
    let left: Vec<&World> = ws.iter().collect();
    let worlds: BTreeSet<World> = relalg::pool::par_flat_map(&left, |i| {
        ws.iter()
            .map(|j| {
                let mut rels = i.rels().to_vec();
                rels.extend(j.rels().iter().cloned());
                World::from_shared(rels)
            })
            .collect()
    })
    .into_iter()
    .collect();
    WorldSet {
        rel_names: Arc::new(names),
        worlds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::attrs;

    fn flights() -> Relation {
        Relation::table(
            &["Dep", "Arr"],
            &[
                &["FRA", "BCN"],
                &["FRA", "ATL"],
                &["PAR", "ATL"],
                &["PAR", "BCN"],
                &["PHL", "ATL"],
            ],
        )
    }

    #[test]
    fn single_world() {
        let ws = WorldSet::single(vec![("Flights", flights())]);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws.rel_names(), ["Flights"]);
        assert!(ws.the_world().is_some());
        assert_eq!(ws.index_of("Flights"), Some(0));
        assert_eq!(ws.index_of("Nope"), None);
    }

    #[test]
    fn worlds_dedup() {
        let w = World::new(vec![flights()]);
        let ws = WorldSet::from_worlds(vec!["F".into()], vec![w.clone(), w.clone()]).unwrap();
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn schema_uniformity_enforced() {
        let w1 = World::new(vec![flights()]);
        let w2 = World::new(vec![Relation::table(&["X"], &[&[1i64]])]);
        assert!(WorldSet::from_worlds(vec!["F".into()], vec![w1, w2]).is_err());
    }

    #[test]
    fn arity_enforced() {
        let w1 = World::new(vec![flights(), flights()]);
        assert!(WorldSet::from_worlds(vec!["F".into()], vec![w1]).is_err());
    }

    #[test]
    fn extend_and_drop() {
        let ws = WorldSet::single(vec![("Flights", flights())]);
        let ext = ws
            .extend_with("Deps", |w| w.rel(0).project(&attrs(&["Dep"])))
            .unwrap();
        assert_eq!(ext.rel_names(), ["Flights", "Deps"]);
        assert_eq!(ext.the_world().unwrap().last().len(), 3);
        assert_eq!(ext.drop_last(), ws);
    }

    #[test]
    fn flat_map_splits_worlds() {
        let ws = WorldSet::single(vec![("Flights", flights())]);
        let split = ws
            .flat_map_worlds(|w| -> Result<Vec<World>> {
                let deps = w.rel(0).distinct_values(&attrs(&["Dep"]))?;
                deps.into_iter()
                    .map(|d| {
                        let pred = relalg::Pred::eq_const("Dep", d[0]);
                        Ok(World::new(vec![w.rel(0).select(&pred)?]))
                    })
                    .collect()
            })
            .unwrap();
        assert_eq!(split.len(), 3); // FRA, PAR, PHL — Figure 2(b)
    }

    #[test]
    fn par_variants_match_sequential() {
        let ws = WorldSet::single(vec![("Flights", flights())]);
        let split = ws
            .flat_map_worlds(|w| -> Result<Vec<World>> {
                w.rel(0).partition_by(&attrs(&["Dep"])).map(|parts| {
                    parts
                        .into_iter()
                        .map(|(_, p)| World::new(vec![p]))
                        .collect()
                })
            })
            .unwrap();

        let seq_map = split
            .map_worlds(|w| -> Result<World> { Ok(w.replace_last(w.last().clone())) })
            .unwrap();
        let par_map = split
            .par_map_worlds(|w| -> Result<World> { Ok(w.replace_last(w.last().clone())) })
            .unwrap();
        assert_eq!(seq_map, par_map);

        let seq_ext = split
            .extend_with("Deps", |w| w.last().project(&attrs(&["Dep"])))
            .unwrap();
        let par_ext = split
            .par_extend_with("Deps", |w| w.last().project(&attrs(&["Dep"])))
            .unwrap();
        assert_eq!(seq_ext, par_ext);

        let dup = |w: &World| -> Result<Vec<World>> { Ok(vec![w.clone(), w.clone()]) };
        assert_eq!(
            split.flat_map_worlds(dup).unwrap(),
            split.par_flat_map_worlds(dup).unwrap()
        );
    }

    #[test]
    fn closures_union_intersection() {
        let mk = |city: &str| World::new(vec![Relation::table(&["Arr"], &[&[city]])]);
        let ws = WorldSet::from_worlds(vec!["R".into()], vec![mk("ATL"), mk("BCN")]).unwrap();
        assert_eq!(ws.union_of_last().unwrap().unwrap().len(), 2);
        assert_eq!(ws.intersect_of_last().unwrap().unwrap().len(), 0);
        assert!(WorldSet::empty(vec!["R".into()])
            .union_of_last()
            .unwrap()
            .is_none());
    }

    #[test]
    fn world_accessors() {
        let w = World::new(vec![flights(), Relation::unit()]);
        assert_eq!(w.arity(), 2);
        assert_eq!(w.prefix().len(), 1);
        assert_eq!(w.last(), &Relation::unit());
        assert_eq!(w.replace_last(flights()).last(), &flights());
        assert_eq!(w.drop_last().arity(), 1);
    }

    #[test]
    fn render_contains_names() {
        let ws = WorldSet::single(vec![("Flights", flights())]);
        let s = ws.render();
        assert!(s.contains("Flights"));
        assert!(s.contains("FRA"));
    }
}
