//! Parallel-vs-sequential determinism of the Figure-3 semantics.
//!
//! The execution pool (`relalg::pool`) must be invisible in every output:
//! workers write results in input order (or into canonicalizing sort/dedup
//! passes), so evaluating any query at any thread count yields the same
//! world-set, byte for byte. This suite pins that property for the world
//! fan-outs the pool parallelizes — `eval_worlds` over unary/binary
//! operators, `choice-of` splitting, `grouped` (`poss`/`cert`/`pγ`/`cγ`)
//! and `repair-by-key` — on datagen-seeded inputs across several seeds.

use relalg::{attrs, pool, Pred};
use worldset::WorldSet;
use wsa::{eval_named, Query};

/// Serializes tests that flip the process-wide worker count.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Evaluate `q` over `ws` at the given thread count, returning the
/// rendered world-set (rendering covers world order, relation order and
/// every tuple, so equal renders mean byte-identical results).
fn render_at(threads: usize, q: &Query, ws: &WorldSet) -> String {
    pool::set_threads(threads);
    let out = eval_named(q, ws, "Ans").expect("eval");
    pool::set_threads(0);
    format!("{}worlds={}", out.render(), out.len())
}

fn assert_thread_invariant(q: &Query, ws: &WorldSet) {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sequential = render_at(1, q, ws);
    for threads in [2, 4, 8] {
        let parallel = render_at(threads, q, ws);
        assert_eq!(
            sequential, parallel,
            "output diverged between 1 and {threads} threads"
        );
    }
}

const SEEDS: [u64; 3] = [11, 23, 47];

fn split_worlds(seed: u64) -> WorldSet {
    let flights = datagen::flights(seed, 12, 8, 6);
    let ws = WorldSet::single(vec![("F", flights)]);
    eval_named(&Query::rel("F").choice(attrs(&["Dep"])), &ws, "ByDep").expect("split")
}

#[test]
fn eval_worlds_unary_chain_is_thread_invariant() {
    for seed in SEEDS {
        let ws = split_worlds(seed);
        let q = Query::rel("ByDep")
            .select(Pred::ne_attr("Dep", "Arr"))
            .project(attrs(&["Arr"]));
        assert_thread_invariant(&q, &ws);
    }
}

#[test]
fn choice_of_is_thread_invariant() {
    for seed in SEEDS {
        let flights = datagen::flights(seed, 16, 10, 5);
        let ws = WorldSet::single(vec![("F", flights)]);
        let q = Query::rel("F").choice(attrs(&["Dep"]));
        assert_thread_invariant(&q, &ws);
        let nested = Query::rel("F")
            .choice(attrs(&["Dep"]))
            .choice(attrs(&["Arr"]));
        assert_thread_invariant(&nested, &ws);
    }
}

#[test]
fn grouped_operators_are_thread_invariant() {
    for seed in SEEDS {
        let ws = split_worlds(seed);
        for q in [
            Query::rel("ByDep").project(attrs(&["Arr"])).poss(),
            Query::rel("ByDep").project(attrs(&["Arr"])).cert(),
            Query::rel("ByDep").poss_group(attrs(&["Arr"]), attrs(&["Dep", "Arr"])),
            Query::rel("ByDep").cert_group(attrs(&["Arr"]), attrs(&["Arr"])),
        ] {
            assert_thread_invariant(&q, &ws);
        }
    }
}

#[test]
fn binary_pairing_is_thread_invariant() {
    for seed in SEEDS {
        let ws = split_worlds(seed);
        let q = Query::rel("ByDep")
            .project(attrs(&["Arr"]))
            .union(Query::rel("F").project(attrs(&["Arr"])));
        assert_thread_invariant(&q, &ws);
        let q = Query::rel("ByDep")
            .project(attrs(&["Arr"]))
            .intersect(Query::rel("F").project(attrs(&["Arr"])));
        assert_thread_invariant(&q, &ws);
    }
}

#[test]
fn repair_by_key_is_thread_invariant() {
    for seed in SEEDS {
        // 6 violations -> 64 repairs per world; enough to fan out.
        let census = datagen::census(seed, 12, 6);
        let ws = WorldSet::single(vec![("C", census)]);
        let q = Query::rel("C").repair_by_key(attrs(&["SSN"]));
        assert_thread_invariant(&q, &ws);
    }
}
