//! Equivalence oracle for the factorized engine: on every input and
//! query shape covered here, [`wsa::eval_factorized`] must return a
//! world-set **byte-identical** to the enumerated Figure-3 reference
//! ([`wsa::eval_named`]) — at thread counts 1 and 4, with the
//! `WSDB_NO_FACTORIZE` toggle in both positions for the routed entry, and
//! over a proptest sweep of random choice nestings.
//!
//! The factorized path has no approximation license: it either produces
//! the exact reference answer or reports a budget error (on which the
//! routed entry falls back to the reference evaluator wholesale).

use datagen::{random_query, random_world_set, QuerySpec, RandomSpec};
use proptest::prelude::*;
use relalg::{attrs, config, pool, Pred, Relation};
use worldset::{World, WorldSet};
use wsa::{
    eval_factorized, eval_named, eval_named_routed, eval_planned, plan_query, Query, RepCard,
};

/// Serializes tests that flip process-wide state (worker count, the
/// factorize toggle).
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Render covers world order, relation order and every tuple: equal
/// renders mean byte-identical world-sets (and `assert_eq!` on the value
/// pins structural equality on top).
fn render(ws: &WorldSet) -> String {
    format!("{}worlds={}", ws.render(), ws.len())
}

/// The oracle: factorized output must equal the enumerated reference at
/// thread counts 1 and 4.
fn assert_factorized_matches(q: &Query, ws: &WorldSet) {
    let _guard = lock();
    for threads in [1usize, 4] {
        pool::set_threads(threads);
        let reference = eval_named(q, ws, "Ans").expect("reference evaluator");
        let fact = eval_factorized(q, ws, "Ans").expect("factorized evaluator");
        pool::set_threads(0);
        assert_eq!(fact, reference, "diverged at {threads} thread(s) on {q}");
        assert_eq!(
            render(&fact),
            render(&reference),
            "render diverged at {threads} thread(s) on {q}"
        );
    }
}

const SEEDS: [u64; 4] = [3, 11, 23, 47];

/// A multi-world input: flights split by departure (a handful of worlds,
/// so the enumerated side stays cheap enough to act as oracle).
fn split_worlds(seed: u64) -> WorldSet {
    let flights = datagen::flights(seed, 12, 6, 5);
    let ws = WorldSet::single(vec![("F", flights)]);
    eval_named(&Query::rel("F").choice(attrs(&["Dep"])), &ws, "ByDep").expect("split")
}

#[test]
fn choice_chains_match_enumerated() {
    for seed in SEEDS {
        let flights = datagen::flights(seed, 12, 6, 5);
        let ws = WorldSet::single(vec![("F", flights)]);
        assert_factorized_matches(&Query::rel("F").choice(attrs(&["Dep"])), &ws);
        assert_factorized_matches(
            &Query::rel("F")
                .choice(attrs(&["Dep"]))
                .choice(attrs(&["Arr"])),
            &ws,
        );
        assert_factorized_matches(
            &Query::rel("F")
                .choice(attrs(&["Dep"]))
                .select(Pred::ne_attr("Dep", "Arr"))
                .project(attrs(&["Arr"]))
                .choice(attrs(&["Arr"])),
            &ws,
        );
    }
}

#[test]
fn poss_cert_match_enumerated() {
    for seed in SEEDS {
        let ws = split_worlds(seed);
        for q in [
            Query::rel("ByDep").project(attrs(&["Arr"])).poss(),
            Query::rel("ByDep").project(attrs(&["Arr"])).cert(),
            Query::rel("ByDep").choice(attrs(&["Arr"])).poss(),
            Query::rel("ByDep").choice(attrs(&["Arr"])).cert(),
        ] {
            assert_factorized_matches(&q, &ws);
        }
    }
}

#[test]
fn binary_operators_match_enumerated() {
    for seed in SEEDS {
        let ws = split_worlds(seed);
        let left = Query::rel("ByDep").project(attrs(&["Arr"]));
        let plain = Query::rel("F").project(attrs(&["Arr"]));
        // Choices on one or both operands; all four set operations.
        let choice_right = Query::rel("F")
            .choice(attrs(&["Arr"]))
            .project(attrs(&["Arr"]));
        for q in [
            left.clone().union(plain.clone()),
            left.clone().intersect(plain.clone()),
            left.clone().difference(plain.clone()),
            plain.clone().difference(left.clone()),
            left.clone().union(choice_right.clone()),
            left.clone().intersect(choice_right.clone()),
            left.clone().difference(choice_right.clone()),
            left.clone().product(
                choice_right
                    .clone()
                    .rename(vec![("Arr".into(), "Arr2".into())]),
            ),
        ] {
            assert_factorized_matches(&q, &ws);
        }
    }
}

#[test]
fn decode_boundaries_match_enumerated() {
    for seed in SEEDS {
        let ws = split_worlds(seed);
        for q in [
            Query::rel("ByDep").poss_group(attrs(&["Arr"]), attrs(&["Dep", "Arr"])),
            Query::rel("ByDep").cert_group(attrs(&["Arr"]), attrs(&["Arr"])),
            Query::rel("ByDep")
                .choice(attrs(&["Arr"]))
                .poss_group(attrs(&["Arr"]), attrs(&["Arr"])),
            // Continue *past* the boundary: the branch re-enters
            // enumerated evaluation and stays there.
            Query::rel("ByDep")
                .choice(attrs(&["Arr"]))
                .cert_group(attrs(&["Arr"]), attrs(&["Arr"]))
                .poss(),
        ] {
            assert_factorized_matches(&q, &ws);
        }
    }
}

#[test]
fn repair_by_key_matches_enumerated() {
    for seed in SEEDS {
        let census = datagen::census(seed, 8, 3);
        let ws = WorldSet::single(vec![("C", census)]);
        assert_factorized_matches(&Query::rel("C").repair_by_key(attrs(&["SSN"])), &ws);
        assert_factorized_matches(
            &Query::rel("C")
                .repair_by_key(attrs(&["SSN"]))
                .choice(attrs(&["SSN"]))
                .cert(),
            &ws,
        );
    }
}

/// A multi-world base whose splitting factors the planner can steer on:
/// `wc` worlds share `T` (with `groups` distinct keys) and differ only in
/// a one-row marker table `M`.
fn multi(wc: usize, groups: i64) -> WorldSet {
    let rows: Vec<Vec<i64>> = (0..groups).map(|k| vec![k, k % 3]).collect();
    let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
    let t = Relation::table(&["K", "V"], &refs);
    let worlds: Vec<World> = (0..wc)
        .map(|i| World::new(vec![t.clone(), Relation::table(&["M"], &[&[i as i64]])]))
        .collect();
    WorldSet::from_worlds(vec!["T".to_string(), "M".to_string()], worlds).unwrap()
}

/// The planned (mixed-representation) evaluator against the enumerated
/// reference, at thread counts 1 and 4.
fn assert_planned_matches(q: &Query, ws: &WorldSet) {
    let _guard = lock();
    config::set_factorize_enabled(Some(true));
    let plan = plan_query(q, ws);
    for threads in [1usize, 4] {
        pool::set_threads(threads);
        let reference = eval_named(q, ws, "Ans").expect("reference evaluator");
        let planned = eval_planned(q, ws, "Ans", &plan).expect("planned evaluator");
        pool::set_threads(0);
        assert_eq!(planned, reference, "diverged at {threads} thread(s) on {q}");
        assert_eq!(
            render(&planned),
            render(&reference),
            "render diverged at {threads} thread(s) on {q}"
        );
    }
    config::set_factorize_enabled(None);
}

#[test]
fn mixed_plans_match_enumerated() {
    // The B15 shape: a union of two choices squares the split (stays
    // factored, converts at its `cert`), while the single-choice `poss`
    // tail runs enumerated end-to-end — one plan, both representations.
    let ws = multi(4, 8);
    let op1 = Query::rel("T")
        .choice(attrs(&["K"]))
        .project(attrs(&["V"]))
        .union(Query::rel("T").choice(attrs(&["V"])).project(attrs(&["V"])))
        .cert();
    let op2 = Query::rel("T")
        .choice(attrs(&["K"]))
        .project(attrs(&["V"]))
        .poss();
    let q = op1.clone().intersect(op2.clone());
    {
        let _guard = lock();
        config::set_factorize_enabled(Some(true));
        let plan = plan_query(&q, &ws);
        assert!(plan.any_f(), "plan must keep a factored region");
        assert_eq!(plan.kids[0].card, RepCard::Convert, "F→E switch at cert");
        assert_eq!(plan.kids[1].card, RepCard::E, "linear tail stays enumerated");
        config::set_factorize_enabled(None);
    }
    assert_planned_matches(&q, &ws);
    // Both forced-switch directions in isolation: the factored region
    // alone (expansion forced at the root)…
    assert_planned_matches(&op1, &ws);
    // …and past a decode boundary, where the collapsing region below is
    // factored but the grouped merge re-enters enumeration (F→E at `cγ`).
    let boundary = op1.cert_group(attrs(&["V"]), attrs(&["V"]));
    {
        let _guard = lock();
        config::set_factorize_enabled(Some(true));
        let plan = plan_query(&boundary, &ws);
        assert_eq!(plan.card, RepCard::E, "decode boundary always enumerated");
        assert_eq!(plan.kids[0].card, RepCard::Convert, "subtree expands below it");
        config::set_factorize_enabled(None);
    }
    assert_planned_matches(&boundary, &ws);
}

#[test]
fn linear_merges_route_enumerated() {
    // The B12 `merge_poss` regression: a linear choice→project→poss tail
    // gains nothing from factorizing, so the per-node chooser must leave
    // the whole plan enumerated and the routed entry must delegate
    // wholesale (zero conversion overhead, byte-identical output).
    let _guard = lock();
    let ws = multi(4, 8);
    let q = Query::rel("T")
        .choice(attrs(&["K"]))
        .project(attrs(&["V"]))
        .poss();
    config::set_factorize_enabled(Some(true));
    let plan = plan_query(&q, &ws);
    assert!(!plan.any_f(), "linear merge tails must not factorize");
    let reference = eval_named(&q, &ws, "Ans").expect("reference");
    let routed = eval_named_routed(&q, &ws, "Ans").expect("routed");
    assert_eq!(render(&routed), render(&reference));
    config::set_factorize_enabled(None);
}

#[test]
fn routed_agrees_under_both_toggle_positions() {
    let _guard = lock();
    for seed in SEEDS {
        let flights = datagen::flights(seed, 16, 8, 6);
        let ws = WorldSet::single(vec![("F", flights)]);
        // Enough implicit worlds that the chooser fires when enabled.
        let q = Query::rel("F")
            .choice(attrs(&["Dep"]))
            .choice(attrs(&["Arr"]))
            .project(attrs(&["Arr"]))
            .poss();
        let reference = eval_named(&q, &ws, "Ans").expect("reference");
        for enabled in [true, false] {
            config::set_factorize_enabled(Some(enabled));
            let routed = eval_named_routed(&q, &ws, "Ans").expect("routed");
            assert_eq!(
                routed, reference,
                "routed output must not depend on the toggle (enabled={enabled})"
            );
        }
        config::set_factorize_enabled(None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random well-typed queries (choice nestings, set operations,
    /// grouped merges) over random world-sets: wherever the strict
    /// factorized evaluator succeeds it must match the reference, and the
    /// routed entry must *always* match it (fallback included).
    #[test]
    fn random_choice_nestings_agree(seed in any::<u64>()) {
        let ws = random_world_set(seed, &RandomSpec {
            schemas: vec![vec!["A", "B"], vec!["C", "D"]],
            worlds: 3,
            max_tuples: 5,
            domain: 4,
        });
        let q = random_query(seed, &QuerySpec::default());
        let reference = eval_named(&q, &ws, "Ans");
        match (&reference, eval_factorized(&q, &ws, "Ans")) {
            (Ok(r), Ok(f)) => prop_assert_eq!(&f, r, "factorized diverged on {} (seed {})", q, seed),
            // A budget overflow is an allowed outcome — the router falls
            // back — but succeeding where the reference errors is not.
            (Ok(_), Err(_)) | (Err(_), Err(_)) => {}
            (Err(e), Ok(_)) => prop_assert!(false, "factorized succeeded where reference failed ({e}) on {} (seed {})", q, seed),
        }
        let routed = eval_named_routed(&q, &ws, "Ans");
        match (reference, routed) {
            (Ok(r), Ok(o)) => prop_assert_eq!(o, r, "routed diverged on {} (seed {})", q, seed),
            (Err(_), Err(_)) => {}
            (r, o) => prop_assert!(false, "routed outcome mismatch on {} (seed {}): reference {:?} vs routed {:?}", q, seed, r.is_ok(), o.is_ok()),
        }
    }

    /// Lineage-formula compaction is a pure representation change: with
    /// the `WSDB_NO_COMPACT` toggle in either position, wherever the
    /// factorized evaluator succeeds its decoded output must be
    /// byte-identical to the enumerated reference — at 1 and 4 threads.
    #[test]
    fn compaction_preserves_decode(seed in any::<u64>()) {
        let ws = random_world_set(seed, &RandomSpec {
            schemas: vec![vec!["A", "B"], vec!["C", "D"]],
            worlds: 3,
            max_tuples: 5,
            domain: 4,
        });
        let q = random_query(seed, &QuerySpec::default());
        let _guard = lock();
        let reference = eval_named(&q, &ws, "Ans");
        for compact in [true, false] {
            config::set_compact_enabled(Some(compact));
            for threads in [1usize, 4] {
                pool::set_threads(threads);
                let fact = eval_factorized(&q, &ws, "Ans");
                pool::set_threads(0);
                match (&reference, fact) {
                    (Ok(r), Ok(f)) => {
                        prop_assert_eq!(&f, r, "decode diverged (compact={}, {} threads) on {} (seed {})", compact, threads, q, seed);
                        prop_assert_eq!(render(&f), render(r), "render diverged (compact={}, {} threads) on {} (seed {})", compact, threads, q, seed);
                    }
                    // Budget overflow is allowed (the uncompacted side may
                    // hit it earlier); success where the reference errors
                    // is not.
                    (Ok(_), Err(_)) | (Err(_), Err(_)) => {}
                    (Err(e), Ok(_)) => prop_assert!(false, "factorized succeeded where reference failed ({e}) on {} (seed {})", q, seed),
                }
            }
        }
        config::set_compact_enabled(None);
    }
}
