//! The repair-by-key extension and the Proposition-4.2 reduction.
//!
//! `repair-by-key_U(q)` generates one possible world per *maximal repair* of
//! the answer relation under the key constraint `U → rest`: within every
//! group of tuples agreeing on `U`, exactly one tuple is kept. The number of
//! repairs is the product of group sizes — exponential — and Proposition 4.2
//! notes that evaluation of WSA + repair-by-key is NP-hard, via a reduction
//! from graph 3-colorability. This module implements that reduction as an
//! executable witness: [`is_three_colorable`] decides 3-colorability by
//! running a two-statement WSA program.

use relalg::{attrs, Pred, Relation, Result, Value};
use worldset::WorldSet;

use crate::{eval_named, eval_program, Query, Statement};

/// An undirected graph on nodes `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// Number of nodes.
    pub n: usize,
    /// Edges as node pairs.
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// A graph with `n` nodes and the given edges.
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Graph {
        Graph { n, edges }
    }

    /// The complete graph `K_n` (3-colorable iff `n ≤ 3`).
    pub fn complete(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        Graph { n, edges }
    }

    /// The cycle `C_n` (3-colorable for every `n ≠ 0`; 2-colorable iff even).
    pub fn cycle(n: usize) -> Graph {
        let edges = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph { n, edges }
    }
}

const COLORS: [&str; 3] = ["red", "green", "blue"];

/// The input world-set of the reduction: a single world containing
/// `NodeColor(N, Color)` — every node paired with every color — and
/// `Edge(Src, Dst)`.
pub fn coloring_input(g: &Graph) -> WorldSet {
    let mut nc_rows: Vec<Vec<Value>> = Vec::with_capacity(g.n * 3);
    for v in 0..g.n {
        for c in COLORS {
            nc_rows.push(vec![Value::int(v as i64), Value::str(c)]);
        }
    }
    let node_color =
        Relation::from_rows(relalg::Schema::of(&["N", "Color"]), nc_rows).expect("arity");
    let edge_rows: Vec<Vec<Value>> = g
        .edges
        .iter()
        .map(|&(u, v)| vec![Value::int(u as i64), Value::int(v as i64)])
        .collect();
    let edge = Relation::from_rows(relalg::Schema::of(&["Src", "Dst"]), edge_rows).expect("arity");
    WorldSet::single(vec![("NodeColor", node_color), ("Edge", edge)])
}

/// The two-step reduction program.
///
/// 1. `Coloring ← repair-key_N(NodeColor)` — one world per assignment of a
///    single color to every node (`3ⁿ` worlds).
/// 2. The verification query: a world is *good* iff no edge is
///    monochromatic. Using nullary (0-attribute) relations as world-local
///    booleans, the answer of
///    `poss(π∅(NodeColor) − π∅(Bad))` is `{⟨⟩}` iff **some** world is good —
///    i.e. iff the graph is 3-colorable.
pub fn coloring_program() -> (Vec<Statement>, Query) {
    let repair = Statement::new(
        "Coloring",
        Query::rel("NodeColor").repair_by_key(attrs(&["N"])),
    );

    let c1 = Query::rel("Coloring").rename(vec![
        ("N".into(), "N1".into()),
        ("Color".into(), "C1".into()),
    ]);
    let c2 = Query::rel("Coloring").rename(vec![
        ("N".into(), "N2".into()),
        ("Color".into(), "C2".into()),
    ]);
    let bad = c1.product(c2).product(Query::rel("Edge")).select(
        Pred::eq_attr("N1", "Src")
            .and(Pred::eq_attr("N2", "Dst"))
            .and(Pred::eq_attr("C1", "C2")),
    );
    let check = Query::rel("NodeColor")
        .project(vec![])
        .difference(bad.project(vec![]))
        .poss();
    (vec![repair], check)
}

/// Decide 3-colorability by evaluating the reduction. The work is
/// exponential in `g.n` (that is the point of Proposition 4.2) — keep `n`
/// small.
pub fn is_three_colorable(g: &Graph) -> Result<bool> {
    if g.n == 0 {
        return Ok(true);
    }
    let ws = coloring_input(g);
    let (program, check) = coloring_program();
    let after_repair = eval_program(&program, &ws)?;
    let out = eval_named(&check, &after_repair, "Colorable")?;
    // The check query is 1↦1: its answer is the same in every world.
    let colorable = out
        .iter()
        .next()
        .map(|w| !w.last().is_empty())
        .unwrap_or(false);
    Ok(colorable)
}

/// Reference implementation: brute-force search over all colorings, used to
/// cross-validate the WSA reduction in tests.
pub fn brute_force_three_colorable(g: &Graph) -> bool {
    if g.n == 0 {
        return true;
    }
    let mut assign = vec![0u8; g.n];
    loop {
        if g.edges.iter().all(|&(u, v)| assign[u] != assign[v]) {
            return true;
        }
        // Increment base-3 counter.
        let mut i = 0;
        loop {
            if i == g.n {
                return false;
            }
            assign[i] += 1;
            if assign[i] < 3 {
                break;
            }
            assign[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k3_is_colorable_k4_is_not() {
        assert!(is_three_colorable(&Graph::complete(3)).unwrap());
        assert!(!is_three_colorable(&Graph::complete(4)).unwrap());
    }

    #[test]
    fn cycles() {
        assert!(is_three_colorable(&Graph::cycle(3)).unwrap());
        assert!(is_three_colorable(&Graph::cycle(4)).unwrap());
        assert!(is_three_colorable(&Graph::cycle(5)).unwrap());
    }

    #[test]
    fn empty_and_edgeless() {
        assert!(is_three_colorable(&Graph::new(0, vec![])).unwrap());
        assert!(is_three_colorable(&Graph::new(3, vec![])).unwrap());
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        let cases = [
            Graph::complete(2),
            Graph::complete(3),
            Graph::complete(4),
            Graph::cycle(4),
            Graph::cycle(5),
            Graph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]),
        ];
        for g in cases {
            assert_eq!(
                is_three_colorable(&g).unwrap(),
                brute_force_three_colorable(&g),
                "graph {g:?}"
            );
        }
    }

    #[test]
    fn repair_world_count_is_product_of_group_sizes() {
        let g = Graph::new(3, vec![(0, 1)]);
        let ws = coloring_input(&g);
        let (program, _) = coloring_program();
        let out = eval_program(&program, &ws).unwrap();
        assert_eq!(out.len(), 27); // 3^3 colorings
    }
}
