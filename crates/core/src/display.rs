//! Plan-tree rendering in the style of the paper's Figures 8 and 9.

use crate::Query;

/// Render a query as an indented operator tree. Selections directly over
/// products print as joins `⋈[φ]`, matching the plans of Figures 8(b)/9(b).
pub fn render_tree(q: &Query) -> String {
    let mut out = String::new();
    render(q, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn attr_list(attrs: &[relalg::Attr]) -> String {
    attrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn render(q: &Query, depth: usize, out: &mut String) {
    indent(depth, out);
    match q {
        Query::Rel(name) => {
            out.push_str(name);
            out.push('\n');
        }
        Query::Select(p, inner) => {
            // Join sugar: σ_φ(a × b) renders as ⋈_φ.
            if let Query::Product(a, b) = inner.as_ref() {
                out.push_str(&format!("⋈[{p}]\n"));
                render(a, depth + 1, out);
                render(b, depth + 1, out);
            } else {
                out.push_str(&format!("σ[{p}]\n"));
                render(inner, depth + 1, out);
            }
        }
        Query::Project(attrs, inner) => {
            out.push_str(&format!("π{{{}}}\n", attr_list(attrs)));
            render(inner, depth + 1, out);
        }
        Query::Rename(map, inner) => {
            let m = map
                .iter()
                .map(|(s, d)| format!("{s}→{d}"))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!("δ{{{m}}}\n"));
            render(inner, depth + 1, out);
        }
        Query::Product(a, b) => {
            out.push_str("×\n");
            render(a, depth + 1, out);
            render(b, depth + 1, out);
        }
        Query::Union(a, b) => {
            out.push_str("∪\n");
            render(a, depth + 1, out);
            render(b, depth + 1, out);
        }
        Query::Intersect(a, b) => {
            out.push_str("∩\n");
            render(a, depth + 1, out);
            render(b, depth + 1, out);
        }
        Query::Difference(a, b) => {
            out.push_str("−\n");
            render(a, depth + 1, out);
            render(b, depth + 1, out);
        }
        Query::Choice(attrs, inner) => {
            out.push_str(&format!("χ{{{}}}\n", attr_list(attrs)));
            render(inner, depth + 1, out);
        }
        Query::Poss(inner) => {
            out.push_str("poss\n");
            render(inner, depth + 1, out);
        }
        Query::Cert(inner) => {
            out.push_str("cert\n");
            render(inner, depth + 1, out);
        }
        Query::PossGroup { group, proj, input } => {
            out.push_str(&format!("pγ{{{}|{}}}\n", attr_list(proj), attr_list(group)));
            render(input, depth + 1, out);
        }
        Query::CertGroup { group, proj, input } => {
            out.push_str(&format!("cγ{{{}|{}}}\n", attr_list(proj), attr_list(group)));
            render(input, depth + 1, out);
        }
        Query::RepairKey(attrs, inner) => {
            out.push_str(&format!("repair-key{{{}}}\n", attr_list(attrs)));
            render(inner, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::{attrs, Pred};

    #[test]
    fn figure_8b_tree_shape() {
        // q1′ = cert(π_City(χ_Dep(HFlights) ⋈_{Arr=City} Hotels))
        let q = Query::rel("HFlights")
            .choice(attrs(&["Dep"]))
            .product(Query::rel("Hotels"))
            .select(Pred::eq_attr("Arr", "City"))
            .project(attrs(&["City"]))
            .cert();
        let tree = render_tree(&q);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines[0], "cert");
        assert_eq!(lines[1].trim(), "π{City}");
        assert!(lines[2].trim().starts_with("⋈[Arr=City]"));
        assert_eq!(lines[3].trim(), "χ{Dep}");
        assert_eq!(lines[4].trim(), "HFlights");
        assert_eq!(lines[5].trim(), "Hotels");
    }

    #[test]
    fn renders_all_operators() {
        let q = Query::rel("R")
            .rename(vec![("A".into(), "X".into())])
            .union(Query::rel("R").rename(vec![("A".into(), "X".into())]))
            .intersect(Query::rel("S"))
            .difference(Query::rel("S"))
            .repair_by_key(attrs(&["X"]))
            .poss_group(attrs(&["X"]), attrs(&["X"]))
            .cert_group(attrs(&["X"]), attrs(&["X"]))
            .poss();
        let tree = render_tree(&q);
        for symbol in ["poss", "cγ", "pγ", "repair-key", "−", "∩", "∪", "δ"] {
            assert!(tree.contains(symbol), "missing {symbol} in\n{tree}");
        }
    }
}
