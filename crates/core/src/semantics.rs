//! The possible-worlds semantics of World-set Algebra (Figure 3).
//!
//! `⟦q⟧(A)` maps a world-set `A` over `⟨R₁,…,R_k⟩` to a world-set over
//! `⟨R₁,…,R_{k+1}⟩`: each world is extended with the answer to `q` in it.
//!
//! * Relational operators apply to the answer relation per world; *binary*
//!   operators evaluate both operands against the **original** `A` and then
//!   combine answer relations of operand-worlds that agree on `R₁,…,R_k`
//!   ("we forbid operations between relations that occur in different worlds
//!   in the original world-set").
//! * `χ_U` splits each world into one world per `U`-value of its answer
//!   (keeping `R₁,…,R_k`, which ensures compositionality); an empty answer
//!   yields a single world with the empty answer.
//! * `pγ^V_U` / `cγ^V_U` group **all** worlds whose answers agree on `π_U`,
//!   and replace each answer by the union/intersection of `π_V` within the
//!   group (cf. Example 3.1: grouping looks across all worlds, not only
//!   those sharing a prefix).
//! * `poss`/`cert` are the trivial groupings `pγ^*_true` / `cγ^*_true`.
//! * `repair-by-key_U` splits each world into one world per maximal repair
//!   of the answer under the key `U` (Section 4.1, extension).

use std::collections::BTreeMap;
use std::sync::Arc;

use relalg::{Relation, Result, Tuple};
use worldset::{World, WorldSet};

use crate::Query;

/// Evaluate `q` on world-set `ws`, appending the answer relation under the
/// name `"Q"`.
pub fn eval(q: &Query, ws: &WorldSet) -> Result<WorldSet> {
    eval_named(q, ws, "Q")
}

/// Evaluate `q` on world-set `ws`, appending the answer relation under
/// `out_name`. The input world-set is unchanged except for the appended
/// relation — exactly the `⟨R₁,…,R_k⟩ ↦ ⟨R₁,…,R_{k+1}⟩` scheme of the paper.
pub fn eval_named(q: &Query, ws: &WorldSet, out_name: &str) -> Result<WorldSet> {
    let worlds = eval_worlds(q, ws)?;
    let mut names = ws.rel_names().to_vec();
    names.push(out_name.to_string());
    WorldSet::from_worlds(names, worlds)
}

/// Core evaluator: returns the extended worlds (k+1 relations each),
/// deduplicated (the model is a *set* of worlds; without deduplication
/// nested world-splitting operators would multiply identical worlds).
pub(crate) fn eval_worlds(q: &Query, ws: &WorldSet) -> Result<Vec<World>> {
    let raw = eval_worlds_inner(q, ws)?;
    Ok(dedup_worlds(raw))
}

/// Deduplicate a world list (the model is a *set* of worlds).
pub(crate) fn dedup_worlds(raw: Vec<World>) -> Vec<World> {
    let set: std::collections::BTreeSet<World> = raw.into_iter().collect();
    set.into_iter().collect()
}

fn eval_worlds_inner(q: &Query, ws: &WorldSet) -> Result<Vec<World>> {
    match q {
        Query::Rel(name) => {
            let idx = ws
                .index_of(name)
                .ok_or_else(|| relalg::RelalgError::UnknownTable { name: name.clone() })?;
            // The answer is the base relation itself: a shared handle, so
            // appending it to every world is a reference-count bump.
            Ok(ws
                .iter()
                .map(|w| w.with(w.rel_shared(idx).clone()))
                .collect())
        }

        Query::Select(p, inner) => unary(ws, inner, |r| r.select(p)),
        Query::Project(attrs, inner) => unary(ws, inner, |r| r.project(attrs)),
        Query::Rename(map, inner) => unary(ws, inner, |r| r.rename(map)),

        Query::Product(a, b) => binary(ws, a, b, |l, r| l.product(r)),
        Query::Union(a, b) => binary(ws, a, b, |l, r| l.union(r)),
        Query::Intersect(a, b) => binary(ws, a, b, |l, r| l.intersect(r)),
        Query::Difference(a, b) => binary(ws, a, b, |l, r| l.difference(r)),

        Query::Choice(attrs, inner) => {
            let input = eval_worlds(inner, ws)?;
            apply_choice(&input, attrs)
        }

        Query::Poss(inner) => grouped(ws, inner, None, None, true),
        Query::Cert(inner) => grouped(ws, inner, None, None, false),
        Query::PossGroup { group, proj, input } => {
            grouped(ws, input, Some(group), Some(proj), true)
        }
        Query::CertGroup { group, proj, input } => {
            grouped(ws, input, Some(group), Some(proj), false)
        }

        Query::RepairKey(key, inner) => {
            let input = eval_worlds(inner, ws)?;
            apply_repair(&input, key)
        }
    }
}

/// `χ_U` over already-evaluated worlds: each world splits into one world
/// per `U`-value of its answer; an empty answer keeps the world.
pub(crate) fn apply_choice(input: &[World], attrs: &[relalg::Attr]) -> Result<Vec<World>> {
    // Each world splits independently — the pool fans the partition work
    // out per world, and the in-order concatenation keeps the sequential
    // successor order.
    flatten(relalg::pool::par_map(input, |w| {
        let answer = w.last();
        if answer.is_empty() {
            // "When applied to the empty relation, choice-of produces an
            // empty relation" — one world survives.
            return Ok(vec![w.clone()]);
        }
        // One pass over the answer partitions it by the choice attributes
        // (instead of one σ_{U=v} re-scan per created world); the prefix
        // relations are shared by every successor world.
        Ok(answer
            .partition_by(attrs)?
            .into_iter()
            .map(|(_, part)| w.replace_last(part))
            .collect())
    }))
}

/// `repair-by-key_U` over already-evaluated worlds.
pub(crate) fn apply_repair(input: &[World], key: &[relalg::Attr]) -> Result<Vec<World>> {
    flatten(relalg::pool::par_map(input, |w| {
        Ok(repairs_by_key(w.last(), key)?
            .into_iter()
            .map(|repair| w.replace_last(repair))
            .collect())
    }))
}

/// Concatenate per-world fan-out results in world order, surfacing the
/// first error (matching the sequential loop's error-and-order behavior).
fn flatten(nested: Vec<Result<Vec<World>>>) -> Result<Vec<World>> {
    let mut out = Vec::new();
    for worlds in nested {
        out.extend(worlds?);
    }
    Ok(out)
}

fn unary(
    ws: &WorldSet,
    inner: &Query,
    f: impl Fn(&Relation) -> Result<Relation> + Sync,
) -> Result<Vec<World>> {
    let input = eval_worlds(inner, ws)?;
    apply_unary(&input, f)
}

/// A per-world answer transformation over already-evaluated worlds.
pub(crate) fn apply_unary(
    input: &[World],
    f: impl Fn(&Relation) -> Result<Relation> + Sync,
) -> Result<Vec<World>> {
    relalg::pool::par_map(input, |w| Ok(w.replace_last(f(w.last())?)))
        .into_iter()
        .collect()
}

/// Binary operators: evaluate both operands on the *original* world-set and
/// combine the answers of worlds agreeing on the first `k` relations.
/// Pairing uses a map keyed by the shared prefix (hash-join-style), not the
/// naive quadratic scan.
fn binary(
    ws: &WorldSet,
    a: &Query,
    b: &Query,
    op: impl Fn(&Relation, &Relation) -> Result<Relation> + Sync,
) -> Result<Vec<World>> {
    let left = eval_worlds(a, ws)?;
    let right = eval_worlds(b, ws)?;
    apply_binary(&left, &right, op)
}

/// Prefix-paired combination of two operand evaluations over the same
/// original world-set.
pub(crate) fn apply_binary(
    left: &[World],
    right: &[World],
    op: impl Fn(&Relation, &Relation) -> Result<Relation> + Sync,
) -> Result<Vec<World>> {
    // Group right worlds by their prefix. (`Ord` on `Arc<Relation>` always
    // compares relation data — prefixes must pair by *value*, since equal
    // worlds can arrive under distinct allocations from the two operand
    // evaluations.)
    let mut by_prefix: BTreeMap<&[Arc<Relation>], Vec<&Relation>> = BTreeMap::new();
    for w in right {
        by_prefix.entry(w.prefix()).or_default().push(w.last());
    }
    // The per-pair operator application fans out over the left worlds; the
    // map is only read concurrently.
    flatten(relalg::pool::par_map(left, |w| {
        let mut out = Vec::new();
        if let Some(partners) = by_prefix.get(w.prefix()) {
            for r in partners {
                out.push(w.replace_last(op(w.last(), r)?));
            }
        }
        Ok(out)
    }))
}

/// Shared implementation of `poss`, `cert`, `pγ^V_U`, `cγ^V_U`.
///
/// With `group = None` all worlds form one group (the `∼ = true` of
/// `pγ^*_true`); otherwise worlds are grouped by the *set* `π_U(answer)`.
/// With `proj = None` the projection is the identity (`V = *`).
fn grouped(
    ws: &WorldSet,
    inner: &Query,
    group: Option<&[relalg::Attr]>,
    proj: Option<&[relalg::Attr]>,
    is_poss: bool,
) -> Result<Vec<World>> {
    let input = eval_worlds(inner, ws)?;
    apply_grouped(&input, group, proj, is_poss)
}

/// `poss`/`cert`/`pγ`/`cγ` over already-evaluated worlds.
pub(crate) fn apply_grouped(
    input: &[World],
    group: Option<&[relalg::Attr]>,
    proj: Option<&[relalg::Attr]>,
    is_poss: bool,
) -> Result<Vec<World>> {
    // Key: π_U(answer) as a sorted, deduped tuple vector (None ⇒ single
    // group).
    let key_of = |w: &World| -> Result<Option<Vec<Tuple>>> {
        match group {
            None => Ok(None),
            Some(u) => Ok(Some(w.last().distinct_values(u)?)),
        }
    };
    let proj_of = |w: &World| -> Result<Arc<Relation>> {
        match proj {
            // Identity projection: share the answer, no copy.
            None => Ok(w.last_shared().clone()),
            Some(v) => Ok(Arc::new(w.last().project(v)?)),
        }
    };

    // Per-world key extraction and projection are independent — fan them
    // out over the pool; the (key, contribution) pairs come back in world
    // order, so the sequential merge below sees the same sequence as the
    // old single-threaded loop.
    type Keyed = (Option<Vec<Tuple>>, Arc<Relation>);
    let keyed: Vec<Keyed> = relalg::pool::par_map(input, |w| Ok((key_of(w)?, proj_of(w)?)))
        .into_iter()
        .collect::<Result<_>>()?;

    // Combine the answers per group; answers are shared so that installing
    // a group answer into each member world is an `Arc` bump. Each group
    // merges as a pairwise tree reduction on the pool (union/intersection
    // are associative and keep the leftmost schema, so the result equals
    // the sequential in-order fold); a single-member group returns its
    // contribution unchanged — still a shared handle, no copy.
    let mut members: BTreeMap<&Option<Vec<Tuple>>, Vec<Arc<Relation>>> = BTreeMap::new();
    for (key, contribution) in &keyed {
        members.entry(key).or_default().push(contribution.clone());
    }
    let mut group_answer: BTreeMap<&Option<Vec<Tuple>>, Arc<Relation>> = BTreeMap::new();
    for (key, contributions) in members {
        let merged = relalg::pool::par_reduce(contributions, |a, b| {
            let r = if is_poss {
                a.union(b)?
            } else {
                a.intersect(b)?
            };
            Ok::<_, relalg::RelalgError>(Arc::new(r))
        })?
        .expect("every group has at least one member");
        group_answer.insert(key, merged);
    }

    Ok(input
        .iter()
        .zip(&keyed)
        .map(|(w, (key, _))| w.replace_last(group_answer[key].clone()))
        .collect())
}

/// All repairs of `r` under key `key`: choose exactly one tuple from every
/// key-group. The number of repairs is the product of the group sizes —
/// exponential in general (Proposition 4.2).
pub(crate) fn repairs_by_key(r: &Relation, key: &[relalg::Attr]) -> Result<Vec<Relation>> {
    if r.is_empty() {
        return Ok(vec![r.clone()]);
    }
    // Group tuples by key value.
    let mut groups: BTreeMap<Tuple, Vec<Tuple>> = BTreeMap::new();
    let key_idx: Vec<usize> = key
        .iter()
        .map(|a| {
            r.schema()
                .index_of(a)
                .ok_or_else(|| relalg::RelalgError::UnknownAttr {
                    attr: a.clone(),
                    schema: r.schema().clone(),
                })
        })
        .collect::<Result<_>>()?;
    for t in r.iter() {
        let k: Tuple = key_idx.iter().map(|&i| t[i]).collect();
        groups.entry(k).or_default().push(t.clone());
    }
    // Cartesian product of one choice per group. The expansion of each
    // level and the final per-repair relation construction are both
    // independent per partial pick, so they fan out over the pool; chunked
    // in-order concatenation keeps the exact sequential enumeration order.
    let mut picks: Vec<Vec<Tuple>> = vec![vec![]];
    for tuples in groups.values() {
        picks = relalg::pool::par_flat_map(&picks, |partial| {
            tuples
                .iter()
                .map(|t| {
                    let mut ext = partial.clone();
                    ext.push(t.clone());
                    ext
                })
                .collect()
        });
    }
    relalg::pool::par_map(&picks, |rows| {
        Relation::from_rows(r.schema().clone(), rows.iter().cloned())
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::{attrs, Pred, Value};

    fn flights() -> Relation {
        Relation::table(
            &["Dep", "Arr"],
            &[
                &["FRA", "BCN"],
                &["FRA", "ATL"],
                &["PAR", "ATL"],
                &["PAR", "BCN"],
                &["PHL", "ATL"],
            ],
        )
    }

    fn single() -> WorldSet {
        WorldSet::single(vec![("Flights", flights())])
    }

    #[test]
    fn rel_copies_into_each_world() {
        let out = eval(&Query::rel("Flights"), &single()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.the_world().unwrap().last(), &flights());
        assert_eq!(out.rel_names(), ["Flights", "Q"]);
    }

    #[test]
    fn figure_2b_choice_of_dep() {
        // χ_Dep(Flights) creates worlds A (FRA), B (PAR), C (PHL).
        let q = Query::rel("Flights").choice(attrs(&["Dep"]));
        let out = eval(&q, &single()).unwrap();
        assert_eq!(out.len(), 3);
        let sizes: Vec<usize> = out.iter().map(|w| w.last().len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        assert_eq!(*sizes.iter().max().unwrap(), 2);
    }

    #[test]
    fn figure_2d_certain_arrivals() {
        // cert over the choice worlds: {ATL} in every world. Starting from a
        // *single* world, the split lives in the answer relation only, so
        // after cert replaces every answer by {ATL} the worlds become
        // structurally identical and merge (world-sets are sets). The
        // faithful Figure-2(d) reproduction with three distinct base worlds
        // lives in tests/fig2_trip_planning.rs.
        let q = Query::rel("Flights")
            .choice(attrs(&["Dep"]))
            .project(attrs(&["Arr"]))
            .cert();
        let out = eval(&q, &single()).unwrap();
        assert_eq!(out.len(), 1);
        for w in out.iter() {
            assert_eq!(w.last(), &Relation::table(&["Arr"], &[&["ATL"]]));
        }
    }

    #[test]
    fn figure_2d_with_three_base_worlds() {
        // The paper's setting: the world-set of Figure 2(b) has three worlds
        // with *different* Flights relations; `cert` extends each with
        // F = {ATL} and all three worlds remain distinct.
        let mk = |rows: &[&[&str]]| World::new(vec![Relation::table(&["Dep", "Arr"], rows)]);
        let ws = WorldSet::from_worlds(
            vec!["Flights".into()],
            vec![
                mk(&[&["FRA", "BCN"], &["FRA", "ATL"]]),
                mk(&[&["PAR", "ATL"], &["PAR", "BCN"]]),
                mk(&[&["PHL", "ATL"]]),
            ],
        )
        .unwrap();
        let q = Query::rel("Flights").project(attrs(&["Arr"])).cert();
        let out = eval(&q, &ws).unwrap();
        assert_eq!(out.len(), 3);
        for w in out.iter() {
            assert_eq!(w.last(), &Relation::table(&["Arr"], &[&["ATL"]]));
        }
    }

    #[test]
    fn poss_unions_across_worlds() {
        let q = Query::rel("Flights")
            .choice(attrs(&["Dep"]))
            .project(attrs(&["Arr"]))
            .poss();
        let out = eval(&q, &single()).unwrap();
        for w in out.iter() {
            assert_eq!(w.last().len(), 2); // {ATL, BCN}
        }
    }

    #[test]
    fn choice_on_empty_relation_keeps_one_world() {
        let q = Query::rel("Flights")
            .select(Pred::eq_const("Arr", "XXX"))
            .choice(attrs(&["Dep"]));
        let out = eval(&q, &single()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.the_world().unwrap().last().is_empty());
    }

    #[test]
    fn binary_pairs_worlds_on_prefix() {
        // Self-product of a choice: both operands re-run the choice, so the
        // answers are paired across all choice combinations (same prefix).
        let left = Query::rel("Flights")
            .choice(attrs(&["Dep"]))
            .project(attrs(&["Arr"]));
        let right = Query::rel("Flights")
            .choice(attrs(&["Dep"]))
            .project(attrs(&["Arr"]))
            .rename(vec![("Arr".into(), "Arr2".into())]);
        let q = left.product(right);
        let out = eval(&q, &single()).unwrap();
        // 3 choices × 3 choices = 9 combinations, all sharing the single
        // original prefix; some may collapse if answers coincide.
        assert!(out.len() <= 9 && out.len() >= 3, "got {}", out.len());
    }

    #[test]
    fn union_requires_same_schema() {
        let q = Query::rel("Flights").union(Query::rel("Flights").project(attrs(&["Arr"])));
        assert!(eval(&q, &single()).is_err());
    }

    #[test]
    fn group_worlds_by_example_5_4() {
        // Figure 5: R = {(1,2),(2,3),(2,4),(3,2)}; χ_A then pγ^{A,B}_B.
        let r = Relation::table(&["A", "B"], &[&[1i64, 2], &[2, 3], &[2, 4], &[3, 2]]);
        let ws = WorldSet::single(vec![("R", r)]);
        let q = Query::rel("R")
            .choice(attrs(&["A"]))
            .poss_group(attrs(&["B"]), attrs(&["A", "B"]));
        let out = eval(&q, &ws).unwrap();
        // Worlds for A=1 and A=3 agree on π_B = {2}; both get the group
        // union {(1,2),(3,2)} and — sharing the same base R — merge into one
        // world. (The inlined representation of Figure 5(e) keeps both ids 1
        // and 3, which encode this same world twice; cf. Remark after
        // Definition 5.1.)
        assert_eq!(out.len(), 2);
        let merged = Relation::table(&["A", "B"], &[&[1i64, 2], &[3, 2]]);
        let solo = Relation::table(&["A", "B"], &[&[2i64, 3], &[2, 4]]);
        let answers: Vec<&Relation> = out.iter().map(|w| w.last()).collect();
        assert!(answers.contains(&&merged));
        assert!(answers.contains(&&solo));
    }

    #[test]
    fn cert_group_intersects_within_group() {
        let r = Relation::table(&["A", "B"], &[&[1i64, 2], &[2, 3], &[2, 4], &[3, 2]]);
        let ws = WorldSet::single(vec![("R", r)]);
        let q = Query::rel("R")
            .choice(attrs(&["A"]))
            .cert_group(attrs(&["B"]), attrs(&["B"]));
        let out = eval(&q, &ws).unwrap();
        for w in out.iter() {
            let b_vals: Vec<i64> = w.last().iter().map(|t| t[0].as_int().unwrap()).collect();
            // Group {A=1, A=3}: π_B both {2} → intersection {2}.
            // Group {A=2}: π_B = {3,4}.
            assert!(b_vals == vec![2] || b_vals == vec![3, 4]);
        }
    }

    #[test]
    fn repair_by_key_generates_all_repairs() {
        let r = Relation::table(&["K", "V"], &[&[1i64, 10], &[1, 11], &[2, 20]]);
        let ws = WorldSet::single(vec![("R", r)]);
        let q = Query::rel("R").repair_by_key(attrs(&["K"]));
        let out = eval(&q, &ws).unwrap();
        assert_eq!(out.len(), 2); // two choices for K=1, one for K=2
        for w in out.iter() {
            assert_eq!(w.last().len(), 2);
            assert_eq!(w.last().distinct_values(&attrs(&["K"])).unwrap().len(), 2);
        }
    }

    #[test]
    fn repair_on_empty_is_identity() {
        let r = Relation::empty(relalg::Schema::of(&["K", "V"]));
        assert_eq!(repairs_by_key(&r, &attrs(&["K"])).unwrap().len(), 1);
    }

    #[test]
    fn eval_on_empty_world_set() {
        let ws = WorldSet::empty(vec!["R".into()]);
        let out = eval(&Query::rel("R").poss(), &ws).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn trip_planning_cert_chain() {
        // cert(π_Arr(χ_Dep(HFlights))) — only ATL is reachable from every
        // departure (Example 5.6's semantics).
        let ws = WorldSet::single(vec![("HFlights", flights())]);
        let q = Query::rel("HFlights")
            .choice(attrs(&["Dep"]))
            .project(attrs(&["Arr"]))
            .cert();
        let out = eval(&q, &ws).unwrap();
        for w in out.iter() {
            assert_eq!(w.last().iter().next().unwrap()[0], Value::str("ATL"));
            assert_eq!(w.last().len(), 1);
        }
    }
}
