//! Static typing of WSA queries (Section 4.1, "Operator Typing") and schema
//! inference.
//!
//! Operators are typed by the cardinality of their input and output
//! world-sets: `1↦1`, `1↦m`, `m↦1`, `m↦m` (with overloading). A query is
//! **complete-to-complete** (`1↦1`) when, started on a singleton world-set,
//! its *answer* is the same relation in every resulting world — "their
//! outermost operators are either poss or cert" in the paper's examples.
//! The translation of Section 5 uses this type to decide whether the final
//! world-id attributes can be projected away (Theorem 5.7).

use relalg::{Attr, Pred, RelalgError, Result, Schema};

use crate::Query;

/// Whether a world-set is known to be a singleton.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Multiplicity {
    /// Exactly one world.
    One,
    /// Possibly many worlds.
    Many,
}

/// The inferred world-set type of a query for a given input multiplicity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WorldType {
    /// Cardinality class of the output world-set.
    pub worlds: Multiplicity,
    /// Whether the answer relation is guaranteed identical in all output
    /// worlds (the property that makes a query "map to a complete
    /// database").
    pub uniform: bool,
}

/// Infer the world-set type of `q` when applied to a world-set of
/// multiplicity `input`.
pub fn world_type(q: &Query, input: Multiplicity) -> WorldType {
    match q {
        Query::Rel(_) => WorldType {
            worlds: input,
            uniform: input == Multiplicity::One,
        },
        Query::Select(_, q) | Query::Project(_, q) | Query::Rename(_, q) => world_type(q, input),
        Query::Product(a, b)
        | Query::Union(a, b)
        | Query::Intersect(a, b)
        | Query::Difference(a, b) => {
            let ta = world_type(a, input);
            let tb = world_type(b, input);
            let worlds = if ta.worlds == Multiplicity::One && tb.worlds == Multiplicity::One {
                Multiplicity::One
            } else {
                Multiplicity::Many
            };
            WorldType {
                worlds,
                uniform: ta.uniform && tb.uniform,
            }
        }
        Query::Choice(_, q) => {
            let _ = world_type(q, input);
            WorldType {
                worlds: Multiplicity::Many,
                uniform: false,
            }
        }
        Query::RepairKey(_, q) => {
            let _ = world_type(q, input);
            WorldType {
                worlds: Multiplicity::Many,
                uniform: false,
            }
        }
        Query::PossGroup { input: q, .. } | Query::CertGroup { input: q, .. } => {
            // Grouping preserves the world-set; answers become uniform only
            // if they already were (then all worlds share one group).
            world_type(q, input)
        }
        Query::Poss(q) | Query::Cert(q) => {
            let t = world_type(q, input);
            WorldType {
                worlds: t.worlds,
                uniform: true,
            }
        }
    }
}

/// Whether `q` is a complete-to-complete (`1↦1`) query: on a one-world
/// input, the answer relation is the same in every output world, so the
/// result is a complete database (Theorem 5.7's premise).
pub fn is_complete_to_complete(q: &Query) -> bool {
    let t = world_type(q, Multiplicity::One);
    t.uniform || t.worlds == Multiplicity::One
}

/// Infer the answer-relation schema of `q`, given base-relation schemas.
/// Also validates attribute references (selection conditions, projection
/// lists, grouping attributes, choice attributes, repair keys).
pub fn output_schema(q: &Query, base: &dyn Fn(&str) -> Option<Schema>) -> Result<Schema> {
    match q {
        Query::Rel(name) => {
            base(name).ok_or_else(|| RelalgError::UnknownTable { name: name.clone() })
        }
        Query::Select(pred, inner) => {
            let s = output_schema(inner, base)?;
            check_pred(pred, &s)?;
            Ok(s)
        }
        Query::Project(attrs, inner) => {
            let s = output_schema(inner, base)?;
            check_subset(attrs, &s)?;
            Schema::try_new(attrs.clone()).ok_or_else(|| RelalgError::DuplicateAttr {
                attr: attrs[0].clone(),
            })
        }
        Query::Rename(map, inner) => {
            let s = output_schema(inner, base)?;
            let renamed: Vec<Attr> = s
                .attrs()
                .iter()
                .map(|a| {
                    map.iter()
                        .find(|(src, _)| src == a)
                        .map(|(_, d)| d.clone())
                        .unwrap_or_else(|| a.clone())
                })
                .collect();
            for (src, _) in map {
                if !s.contains(src) {
                    return Err(RelalgError::UnknownAttr {
                        attr: src.clone(),
                        schema: s,
                    });
                }
            }
            Schema::try_new(renamed).ok_or_else(|| RelalgError::DuplicateAttr {
                attr: map[0].1.clone(),
            })
        }
        Query::Product(a, b) => {
            let sa = output_schema(a, base)?;
            let sb = output_schema(b, base)?;
            if !sa.disjoint(&sb) {
                return Err(RelalgError::NotDisjoint {
                    left: sa,
                    right: sb,
                });
            }
            let mut attrs = sa.attrs().to_vec();
            attrs.extend_from_slice(sb.attrs());
            Ok(Schema::new(attrs))
        }
        Query::Union(a, b) | Query::Intersect(a, b) | Query::Difference(a, b) => {
            let sa = output_schema(a, base)?;
            let sb = output_schema(b, base)?;
            if !sa.same_attr_set(&sb) {
                return Err(RelalgError::SchemaMismatch {
                    left: sa,
                    right: sb,
                });
            }
            Ok(sa)
        }
        Query::Choice(attrs, inner) | Query::RepairKey(attrs, inner) => {
            let s = output_schema(inner, base)?;
            check_subset(attrs, &s)?;
            Ok(s)
        }
        Query::Poss(inner) | Query::Cert(inner) => output_schema(inner, base),
        Query::PossGroup { group, proj, input } | Query::CertGroup { group, proj, input } => {
            let s = output_schema(input, base)?;
            check_subset(group, &s)?;
            check_subset(proj, &s)?;
            Schema::try_new(proj.clone()).ok_or_else(|| RelalgError::DuplicateAttr {
                attr: proj[0].clone(),
            })
        }
    }
}

fn check_subset(attrs: &[Attr], s: &Schema) -> Result<()> {
    for a in attrs {
        if !s.contains(a) {
            return Err(RelalgError::UnknownAttr {
                attr: a.clone(),
                schema: s.clone(),
            });
        }
    }
    Ok(())
}

fn check_pred(pred: &Pred, s: &Schema) -> Result<()> {
    for a in pred.attrs() {
        if !s.contains(&a) {
            return Err(RelalgError::UnknownAttr {
                attr: a,
                schema: s.clone(),
            });
        }
    }
    Ok(())
}

/// An upper bound on the factor by which a query can multiply the number of
/// worlds, given the active-domain size (Section 7's counting argument:
/// "choice-of \[is\] the only operation to increase the number of worlds").
/// `χ_U` multiplies by at most `adom^|U|` (one world per `U`-value
/// combination); `repair-by-key` by at most `adom^arity` per key group —
/// bounded here by `adom^arity` overall per operator application on
/// relations with at most `adom^arity` tuples.
pub fn world_growth_bound(q: &Query, adom: u64) -> u64 {
    match q {
        Query::Rel(_) => 1,
        Query::Select(_, inner)
        | Query::Project(_, inner)
        | Query::Rename(_, inner)
        | Query::Poss(inner)
        | Query::Cert(inner)
        | Query::PossGroup { input: inner, .. }
        | Query::CertGroup { input: inner, .. } => world_growth_bound(inner, adom),
        Query::Product(a, b)
        | Query::Union(a, b)
        | Query::Intersect(a, b)
        | Query::Difference(a, b) => {
            world_growth_bound(a, adom).saturating_mul(world_growth_bound(b, adom))
        }
        Query::Choice(attrs, inner) => world_growth_bound(inner, adom)
            .saturating_mul(adom.saturating_pow(attrs.len() as u32).saturating_add(1)),
        Query::RepairKey(_, inner) => {
            // Each key group contributes at most its size; the total number
            // of repairs is bounded by adom^arity choose structure — we use
            // the crude bound adom^adom per application, which suffices for
            // the Section-7 separation argument (it is a constant in the
            // number of *worlds*).
            world_growth_bound(inner, adom)
                .saturating_mul(adom.saturating_pow(adom.min(16) as u32).saturating_add(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::attrs;

    fn base(name: &str) -> Option<Schema> {
        match name {
            "R" => Some(Schema::of(&["A", "B"])),
            "S" => Some(Schema::of(&["C"])),
            _ => None,
        }
    }

    #[test]
    fn closed_queries_are_complete_to_complete() {
        let q = Query::rel("R")
            .choice(attrs(&["A"]))
            .project(attrs(&["B"]))
            .cert();
        assert!(is_complete_to_complete(&q));
        assert_eq!(world_type(&q, Multiplicity::One).worlds, Multiplicity::Many);
    }

    #[test]
    fn open_choice_is_not_complete() {
        let q = Query::rel("R").choice(attrs(&["A"]));
        assert!(!is_complete_to_complete(&q));
    }

    #[test]
    fn pure_relational_queries_are_complete() {
        let q = Query::rel("R").select(Pred::eq_const("A", 1));
        assert!(is_complete_to_complete(&q));
        assert_eq!(world_type(&q, Multiplicity::One).worlds, Multiplicity::One);
    }

    #[test]
    fn grouping_preserves_uniformity_only() {
        let open = Query::rel("R")
            .choice(attrs(&["A"]))
            .poss_group(attrs(&["B"]), attrs(&["A", "B"]));
        assert!(!is_complete_to_complete(&open));
        let closed = open.poss();
        assert!(is_complete_to_complete(&closed));
    }

    #[test]
    fn binary_needs_both_uniform() {
        let closed = Query::rel("R").choice(attrs(&["A"])).poss();
        let open = Query::rel("R").choice(attrs(&["A"]));
        assert!(is_complete_to_complete(
            &closed.clone().union(closed.clone())
        ));
        assert!(!is_complete_to_complete(&closed.union(open)));
    }

    #[test]
    fn schema_inference_and_validation() {
        let q = Query::rel("R")
            .choice(attrs(&["A"]))
            .poss_group(attrs(&["A"]), attrs(&["B"]));
        assert_eq!(output_schema(&q, &base).unwrap(), Schema::of(&["B"]));

        let bad = Query::rel("R").project(attrs(&["Z"]));
        assert!(output_schema(&bad, &base).is_err());
        let bad = Query::rel("R").select(Pred::eq_const("Z", 1));
        assert!(output_schema(&bad, &base).is_err());
        let bad = Query::rel("R").union(Query::rel("S"));
        assert!(output_schema(&bad, &base).is_err());
        let bad = Query::rel("R").product(Query::rel("R"));
        assert!(output_schema(&bad, &base).is_err());
    }

    #[test]
    fn choice_and_repair_preserve_schema() {
        let q = Query::rel("R").choice(attrs(&["A"]));
        assert_eq!(output_schema(&q, &base).unwrap(), Schema::of(&["A", "B"]));
        let q = Query::rel("R").repair_by_key(attrs(&["A"]));
        assert_eq!(output_schema(&q, &base).unwrap(), Schema::of(&["A", "B"]));
    }

    use relalg::Pred;
}
