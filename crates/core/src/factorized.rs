//! Factorized evaluation of World-set Algebra: the algebra runs over the
//! succinct [`FactoredSet`] representation, and explicit worlds are only
//! materialized at *decode boundaries*.
//!
//! The evaluator mirrors [`crate::semantics`] node for node, but carries a
//! mixed representation ([`Rep`]): a branch is either **factored** — a
//! lineage-carrying answer [`Relation`] plus a world-validity [`Dnf`] over
//! the shared [`FactoredSet`] — or **enumerated**, the explicit world list
//! of the reference semantics. Operators translate as follows:
//!
//! * `σ`/`π`/`δ` run directly on the factored answer (lineage rides along
//!   as an ordinary column through the vectorized kernels);
//! * `×`/`∪`/`∩`/`−` conjoin the operands' validity formulas — the
//!   factorized analogue of the reference evaluator's prefix pairing —
//!   and combine lineage per tuple, checking mutual exclusion at join
//!   time;
//! * `χ_U` allocates one fresh choice variable instead of materializing
//!   one world per group: `n` chained choices multiply the implicit world
//!   count while the representation grows by `n` variables;
//! * `poss`/`cert` fold the lineage column back to certainty without
//!   expanding;
//! * `pγ`/`cγ` (grouping reads *answers across worlds* as first-class
//!   values) and `repair-by-key` are decode boundaries: the branch is
//!   expanded to explicit worlds and evaluation continues enumerated.
//!
//! [`eval_named_routed`] is the public entry: a cost-model-driven chooser
//! ([`should_factorize`], using the [`Relation::stats`] cardinalities to
//! estimate the implicit world count) decides factorized vs. enumerated
//! per query, and *any* factorized error — a representation budget
//! overflow or a genuine algebra error — falls back to the reference
//! evaluator, whose result (or error) is authoritative. The strict entry
//! [`eval_factorized`] is exposed for equivalence testing: modulo
//! fallback, the two paths return byte-identical world-sets.

use relalg::{config, Relation, Result};
use uldb::{Dnf, FResult, FactorError, FactoredSet};
use worldset::{World, WorldSet};

use crate::semantics::{
    apply_binary, apply_choice, apply_grouped, apply_repair, apply_unary, dedup_worlds,
};
use crate::Query;

/// A branch of the evaluation: factored (answer relation + validity
/// formula over the shared variable space) or enumerated (explicit
/// worlds, exactly as in [`crate::semantics`]).
enum Rep {
    F { rel: Relation, w: Dnf },
    E(Vec<World>),
}

struct Fx<'a> {
    fs: FactoredSet,
    ws: &'a WorldSet,
}

impl Fx<'_> {
    fn eval(&mut self, q: &Query) -> FResult<Rep> {
        match q {
            Query::Rel(name) => {
                let rel = self
                    .fs
                    .table(name)
                    .ok_or_else(|| relalg::RelalgError::UnknownTable { name: name.clone() })?
                    .clone();
                let w = self.fs.worlds().clone();
                Ok(Rep::F { rel, w })
            }

            Query::Select(p, inner) => match self.eval(inner)? {
                Rep::F { rel, w } => Ok(Rep::F {
                    rel: self.fs.select(&rel, p)?,
                    w,
                }),
                Rep::E(input) => Ok(Rep::E(dedup_worlds(apply_unary(&input, |r| r.select(p))?))),
            },
            Query::Project(attrs, inner) => match self.eval(inner)? {
                Rep::F { rel, w } => Ok(Rep::F {
                    rel: self.fs.project(&rel, attrs)?,
                    w,
                }),
                Rep::E(input) => Ok(Rep::E(dedup_worlds(apply_unary(&input, |r| {
                    r.project(attrs)
                })?))),
            },
            Query::Rename(map, inner) => match self.eval(inner)? {
                Rep::F { rel, w } => Ok(Rep::F {
                    rel: self.fs.rename(&rel, map)?,
                    w,
                }),
                Rep::E(input) => Ok(Rep::E(dedup_worlds(apply_unary(&input, |r| {
                    r.rename(map)
                })?))),
            },

            Query::Product(a, b) => self.binary(a, b, BinOp::Product),
            Query::Union(a, b) => self.binary(a, b, BinOp::Union),
            Query::Intersect(a, b) => self.binary(a, b, BinOp::Intersect),
            Query::Difference(a, b) => self.binary(a, b, BinOp::Difference),

            Query::Choice(attrs, inner) => match self.eval(inner)? {
                Rep::F { rel, w } => {
                    let (rel, w) = self.fs.choice(&rel, attrs, &w)?;
                    Ok(Rep::F { rel, w })
                }
                Rep::E(input) => Ok(Rep::E(dedup_worlds(apply_choice(&input, attrs)?))),
            },

            Query::Poss(inner) => match self.eval(inner)? {
                // The merged answer is certain (lineage ⊤) and every
                // valid world keeps its prefix: `w` is unchanged.
                Rep::F { rel, w } => Ok(Rep::F {
                    rel: self.fs.poss(&rel, &w)?,
                    w,
                }),
                Rep::E(input) => Ok(Rep::E(dedup_worlds(apply_grouped(
                    &input, None, None, true,
                )?))),
            },
            Query::Cert(inner) => match self.eval(inner)? {
                Rep::F { rel, w } => Ok(Rep::F {
                    rel: self.fs.cert(&rel, &w)?,
                    w,
                }),
                Rep::E(input) => Ok(Rep::E(dedup_worlds(apply_grouped(
                    &input, None, None, false,
                )?))),
            },

            // Decode boundaries: grouping compares answer *sets* across
            // worlds — expand and continue enumerated.
            Query::PossGroup { group, proj, input } => {
                let rep = self.eval(input)?;
                let worlds = self.to_worlds(rep)?;
                Ok(Rep::E(dedup_worlds(apply_grouped(
                    &worlds,
                    Some(group),
                    Some(proj),
                    true,
                )?)))
            }
            Query::CertGroup { group, proj, input } => {
                let rep = self.eval(input)?;
                let worlds = self.to_worlds(rep)?;
                Ok(Rep::E(dedup_worlds(apply_grouped(
                    &worlds,
                    Some(group),
                    Some(proj),
                    false,
                )?)))
            }
            Query::RepairKey(key, inner) => {
                let rep = self.eval(inner)?;
                let worlds = self.to_worlds(rep)?;
                Ok(Rep::E(dedup_worlds(apply_repair(&worlds, key)?)))
            }
        }
    }

    fn binary(&mut self, a: &Query, b: &Query, op: BinOp) -> FResult<Rep> {
        let ra = self.eval(a)?;
        let rb = self.eval(b)?;
        match (ra, rb) {
            (Rep::F { rel: la, w: wa }, Rep::F { rel: lb, w: wb }) => {
                // Validity product = the reference evaluator's pairing of
                // operand worlds over the shared prefix: operand-private
                // choice variables stay independent, shared base
                // variables must agree.
                let w = wa
                    .and_dnf(&wb, self.fs.doms(), self.fs.budget())
                    .ok_or(FactorError::Budget("binary validity product"))?;
                let rel = match op {
                    BinOp::Product => self.fs.product(&la, &lb)?,
                    BinOp::Union => self.fs.union(&la, &lb)?,
                    BinOp::Intersect => self.fs.intersect(&la, &lb)?,
                    BinOp::Difference => self.fs.difference(&la, &lb)?,
                };
                Ok(Rep::F { rel, w })
            }
            (ra, rb) => {
                let left = self.to_worlds(ra)?;
                let right = self.to_worlds(rb)?;
                let out = match op {
                    BinOp::Product => apply_binary(&left, &right, |l, r| l.product(r)),
                    BinOp::Union => apply_binary(&left, &right, |l, r| l.union(r)),
                    BinOp::Intersect => apply_binary(&left, &right, |l, r| l.intersect(r)),
                    BinOp::Difference => apply_binary(&left, &right, |l, r| l.difference(r)),
                }?;
                Ok(Rep::E(dedup_worlds(out)))
            }
        }
    }

    /// Decode a branch to explicit worlds (prefix relations + answer
    /// last), the input format of the `apply_*` helpers.
    fn to_worlds(&self, rep: Rep) -> FResult<Vec<World>> {
        match rep {
            Rep::E(worlds) => Ok(worlds),
            Rep::F { rel, w } => {
                let ws = self.fs.expand_with(&w, Some(("Q", &rel)))?;
                Ok(ws.worlds())
            }
        }
    }

    /// Plan-directed evaluation: each node runs in the representation the
    /// [`RepPlan`] assigned to it.
    ///
    /// Three regimes, by construction of the plan:
    ///
    /// * a node whose whole subtree is enumerated delegates wholesale to
    ///   the reference evaluator — byte-identical to
    ///   [`crate::eval_named`] by definition, with zero conversion
    ///   overhead (the per-operator fix for the `merge_poss` regression);
    /// * a factored node has only factored children (the planner forces
    ///   `F` down through its subtree — an enumerated branch cannot be
    ///   re-factorized, because re-encoding would assign fresh variables
    ///   and diverge from the shared prefix space);
    /// * an enumerated node above a factored region is the *conversion
    ///   site*: the factored child is expanded here
    ///   ([`FactoredSet::expand_with`]) and evaluation continues
    ///   enumerated.
    fn eval_p(&mut self, q: &Query, p: &RepPlan) -> FResult<Rep> {
        if !p.f && p.all_e {
            return Ok(Rep::E(crate::semantics::eval_worlds(q, self.ws)?));
        }
        if p.f {
            return match q {
                Query::Rel(name) => {
                    let rel = self
                        .fs
                        .table(name)
                        .ok_or_else(|| relalg::RelalgError::UnknownTable { name: name.clone() })?
                        .clone();
                    Ok(Rep::F {
                        rel,
                        w: self.fs.worlds().clone(),
                    })
                }
                Query::Select(pred, i) => {
                    let (rel, w) = self.eval_pf(i, &p.kids[0])?;
                    Ok(Rep::F {
                        rel: self.fs.select(&rel, pred)?,
                        w,
                    })
                }
                Query::Project(attrs, i) => {
                    let (rel, w) = self.eval_pf(i, &p.kids[0])?;
                    Ok(Rep::F {
                        rel: self.fs.project(&rel, attrs)?,
                        w,
                    })
                }
                Query::Rename(map, i) => {
                    let (rel, w) = self.eval_pf(i, &p.kids[0])?;
                    Ok(Rep::F {
                        rel: self.fs.rename(&rel, map)?,
                        w,
                    })
                }
                Query::Choice(attrs, i) => {
                    let (rel, w) = self.eval_pf(i, &p.kids[0])?;
                    let (rel, w) = self.fs.choice(&rel, attrs, &w)?;
                    Ok(Rep::F { rel, w })
                }
                Query::Poss(i) => {
                    let (rel, w) = self.eval_pf(i, &p.kids[0])?;
                    Ok(Rep::F {
                        rel: self.fs.poss(&rel, &w)?,
                        w,
                    })
                }
                Query::Cert(i) => {
                    let (rel, w) = self.eval_pf(i, &p.kids[0])?;
                    Ok(Rep::F {
                        rel: self.fs.cert(&rel, &w)?,
                        w,
                    })
                }
                Query::Product(a, b)
                | Query::Union(a, b)
                | Query::Intersect(a, b)
                | Query::Difference(a, b) => {
                    let (la, wa) = self.eval_pf(a, &p.kids[0])?;
                    let (lb, wb) = self.eval_pf(b, &p.kids[1])?;
                    let w = wa
                        .and_dnf(&wb, self.fs.doms(), self.fs.budget())
                        .ok_or(FactorError::Budget("binary validity product"))?;
                    let rel = match q {
                        Query::Product(_, _) => self.fs.product(&la, &lb)?,
                        Query::Union(_, _) => self.fs.union(&la, &lb)?,
                        Query::Intersect(_, _) => self.fs.intersect(&la, &lb)?,
                        _ => self.fs.difference(&la, &lb)?,
                    };
                    Ok(Rep::F { rel, w })
                }
                Query::PossGroup { .. } | Query::CertGroup { .. } | Query::RepairKey(_, _) => {
                    unreachable!("planner never marks a decode boundary factored")
                }
            };
        }
        // Enumerated node with at least one factored descendant: evaluate
        // the children per plan, expand any factored branch here, apply
        // the reference operator.
        match q {
            Query::Rel(_) => Ok(Rep::E(crate::semantics::eval_worlds(q, self.ws)?)),
            Query::Select(pred, i) => {
                let input = self.child_worlds(i, &p.kids[0])?;
                Ok(Rep::E(dedup_worlds(apply_unary(&input, |r| {
                    r.select(pred)
                })?)))
            }
            Query::Project(attrs, i) => {
                let input = self.child_worlds(i, &p.kids[0])?;
                Ok(Rep::E(dedup_worlds(apply_unary(&input, |r| {
                    r.project(attrs)
                })?)))
            }
            Query::Rename(map, i) => {
                let input = self.child_worlds(i, &p.kids[0])?;
                Ok(Rep::E(dedup_worlds(apply_unary(&input, |r| {
                    r.rename(map)
                })?)))
            }
            Query::Choice(attrs, i) => {
                let input = self.child_worlds(i, &p.kids[0])?;
                Ok(Rep::E(dedup_worlds(apply_choice(&input, attrs)?)))
            }
            Query::Poss(i) => {
                let input = self.child_worlds(i, &p.kids[0])?;
                Ok(Rep::E(dedup_worlds(apply_grouped(
                    &input, None, None, true,
                )?)))
            }
            Query::Cert(i) => {
                let input = self.child_worlds(i, &p.kids[0])?;
                Ok(Rep::E(dedup_worlds(apply_grouped(
                    &input, None, None, false,
                )?)))
            }
            Query::PossGroup { group, proj, input } => {
                let worlds = self.child_worlds(input, &p.kids[0])?;
                Ok(Rep::E(dedup_worlds(apply_grouped(
                    &worlds,
                    Some(group),
                    Some(proj),
                    true,
                )?)))
            }
            Query::CertGroup { group, proj, input } => {
                let worlds = self.child_worlds(input, &p.kids[0])?;
                Ok(Rep::E(dedup_worlds(apply_grouped(
                    &worlds,
                    Some(group),
                    Some(proj),
                    false,
                )?)))
            }
            Query::RepairKey(key, i) => {
                let worlds = self.child_worlds(i, &p.kids[0])?;
                Ok(Rep::E(dedup_worlds(apply_repair(&worlds, key)?)))
            }
            Query::Product(a, b) => self.binary_p(a, b, p, BinOp::Product),
            Query::Union(a, b) => self.binary_p(a, b, p, BinOp::Union),
            Query::Intersect(a, b) => self.binary_p(a, b, p, BinOp::Intersect),
            Query::Difference(a, b) => self.binary_p(a, b, p, BinOp::Difference),
        }
    }

    /// Evaluate a factored-plan child, destructuring the invariant that
    /// factored nodes only have factored children.
    fn eval_pf(&mut self, q: &Query, p: &RepPlan) -> FResult<(Relation, Dnf)> {
        match self.eval_p(q, p)? {
            Rep::F { rel, w } => Ok((rel, w)),
            Rep::E(_) => unreachable!("planner invariant: factored node with enumerated child"),
        }
    }

    /// Evaluate a child per plan and decode to explicit worlds (the
    /// conversion site of an enumerated parent over a factored branch).
    fn child_worlds(&mut self, q: &Query, p: &RepPlan) -> FResult<Vec<World>> {
        let rep = self.eval_p(q, p)?;
        self.to_worlds(rep)
    }

    fn binary_p(&mut self, a: &Query, b: &Query, p: &RepPlan, op: BinOp) -> FResult<Rep> {
        let left = self.child_worlds(a, &p.kids[0])?;
        let right = self.child_worlds(b, &p.kids[1])?;
        let out = match op {
            BinOp::Product => apply_binary(&left, &right, |l, r| l.product(r)),
            BinOp::Union => apply_binary(&left, &right, |l, r| l.union(r)),
            BinOp::Intersect => apply_binary(&left, &right, |l, r| l.intersect(r)),
            BinOp::Difference => apply_binary(&left, &right, |l, r| l.difference(r)),
        }?;
        Ok(Rep::E(dedup_worlds(out)))
    }
}

enum BinOp {
    Product,
    Union,
    Intersect,
    Difference,
}

/// Factorization pays only when the implicit world count dwarfs the
/// worlds an enumerated plan would actually touch: a node runs factored
/// when its subtree peak is at least `GAIN × (input + output worlds)`.
/// The margin absorbs the per-world constant advantage of the enumerated
/// kernels (no lineage column, no validity formula) and the decode cost
/// at the region boundary.
const GAIN: u128 = 8;

/// The representation a plan node runs in, as reported by `EXPLAIN`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RepCard {
    /// Factored: lineage-carrying relation + validity formula.
    F,
    /// Enumerated: explicit worlds, reference semantics.
    E,
    /// Factored *region root*: evaluates factored, expanded here for an
    /// enumerated consumer (the conversion site).
    Convert,
}

impl RepCard {
    /// The `EXPLAIN` token.
    pub fn label(self) -> &'static str {
        match self {
            RepCard::F => "F",
            RepCard::E => "E",
            RepCard::Convert => "convert",
        }
    }
}

/// Per-node representation plan for a query over a given world count:
/// one node per [`Query`] node (children in query order), each carrying
/// the cost-model estimates and the representation decision.
///
/// Built in two passes. Bottom-up, each node gets an *output world
/// estimate* `out` (worlds its result distinguishes: choices multiply by
/// the group count, `poss`/`cert` collapse back to the base count since
/// their answer is uniform across worlds, binaries pair operand worlds
/// over the shared prefix) and a subtree `peak`; its own cost rule fires
/// when the subtree is decode-free, contains a choice, and
/// `peak ≥ max(WSDB_FACTORIZE_MIN_WORLDS, GAIN·(input + out))`. Top-down
/// finalization then assigns the actual mode: decode boundaries
/// (`pγ`/`cγ`/`repair-by-key`) are always enumerated, a factored parent
/// forces its whole subtree factored (an enumerated branch cannot be
/// re-encoded into the shared variable space), a binary under an
/// enumerated parent goes factored only when *both* operands' own rules
/// fire (otherwise each operand decides independently — the mixed plan),
/// and any other node under an enumerated parent follows its own rule.
#[derive(Clone, Debug)]
pub struct RepPlan {
    /// The decision, including conversion-site marking.
    pub card: RepCard,
    /// Estimated worlds distinguished by this node's output.
    pub out: u128,
    /// Maximum `out` across the subtree (the implicit-world estimate).
    pub peak: u128,
    /// Child plans, in query-children order.
    pub kids: Vec<RepPlan>,
    /// Evaluates factored.
    f: bool,
    /// This node's own cost rule (before top-down finalization).
    rule_f: bool,
    /// Subtree contains a `choice-of`.
    has_choice: bool,
    /// Subtree is free of decode boundaries.
    decode_free: bool,
    /// Entire subtree enumerated (wholesale delegation to the reference
    /// evaluator).
    all_e: bool,
}

impl RepPlan {
    /// Whether any node of the plan runs factored.
    pub fn any_f(&self) -> bool {
        !self.all_e
    }
}

struct Planner<'a> {
    /// Base world count of the input world-set (≥ 1).
    wc: u128,
    /// `WSDB_FACTORIZE_MIN_WORLDS`.
    min: u128,
    distinct: &'a dyn Fn(&str, &[relalg::Attr]) -> Option<u128>,
}

impl Planner<'_> {
    /// Bottom-up pass: estimates and per-node rules.
    fn build(&self, q: &Query) -> RepPlan {
        let kids: Vec<RepPlan> = match q {
            Query::Rel(_) => vec![],
            Query::Select(_, i)
            | Query::Project(_, i)
            | Query::Rename(_, i)
            | Query::Poss(i)
            | Query::Cert(i)
            | Query::Choice(_, i)
            | Query::RepairKey(_, i) => vec![self.build(i)],
            Query::PossGroup { input, .. } | Query::CertGroup { input, .. } => {
                vec![self.build(input)]
            }
            Query::Product(a, b)
            | Query::Union(a, b)
            | Query::Intersect(a, b)
            | Query::Difference(a, b) => vec![self.build(a), self.build(b)],
        };
        let out = match q {
            Query::Rel(_) => self.wc,
            Query::Select(_, _) | Query::Project(_, _) | Query::Rename(_, _) => kids[0].out,
            // poss/cert install one merged answer in every world: the
            // result distinguishes only the base prefixes again.
            Query::Poss(_) | Query::Cert(_) => self.wc,
            Query::PossGroup { .. } | Query::CertGroup { .. } => kids[0].out,
            Query::Choice(attrs, i) => kids[0]
                .out
                .saturating_mul(group_estimate(attrs, i, self.distinct)),
            // Repairs multiply by the product of key-group sizes; without
            // per-group statistics use a small constant.
            Query::RepairKey(_, _) => kids[0].out.saturating_mul(4),
            // Binaries pair operand worlds over the shared base prefix:
            // operand-private splits multiply, the shared base count is
            // common to both sides.
            Query::Product(_, _)
            | Query::Union(_, _)
            | Query::Intersect(_, _)
            | Query::Difference(_, _) => kids[0]
                .out
                .saturating_mul(kids[1].out)
                .checked_div(self.wc)
                .unwrap_or(u128::MAX)
                .max(1),
        };
        let peak = kids.iter().map(|k| k.peak).fold(out, u128::max);
        let has_choice =
            matches!(q, Query::Choice(_, _)) || kids.iter().any(|k| k.has_choice);
        let decode_free = !matches!(
            q,
            Query::PossGroup { .. } | Query::CertGroup { .. } | Query::RepairKey(_, _)
        ) && kids.iter().all(|k| k.decode_free);
        let rule_f = has_choice
            && decode_free
            && peak >= self.min.max(GAIN.saturating_mul(self.wc.saturating_add(out)));
        RepPlan {
            card: RepCard::E,
            out,
            peak,
            kids,
            f: false,
            rule_f,
            has_choice,
            decode_free,
            all_e: true,
        }
    }

    /// Top-down pass: assign modes and conversion sites (see the
    /// [`RepPlan`] docs for the rule).
    fn finalize(&self, p: &mut RepPlan, q: &Query, parent_f: bool) {
        let f = match q {
            Query::PossGroup { .. } | Query::CertGroup { .. } | Query::RepairKey(_, _) => false,
            _ if parent_f => true,
            Query::Product(_, _)
            | Query::Union(_, _)
            | Query::Intersect(_, _)
            | Query::Difference(_, _) => p.kids[0].rule_f && p.kids[1].rule_f,
            _ => p.rule_f,
        };
        p.f = f;
        p.card = match (f, parent_f) {
            (true, true) => RepCard::F,
            (true, false) => RepCard::Convert,
            (false, _) => RepCard::E,
        };
        match q {
            Query::Rel(_) => {}
            Query::Select(_, i)
            | Query::Project(_, i)
            | Query::Rename(_, i)
            | Query::Poss(i)
            | Query::Cert(i)
            | Query::Choice(_, i)
            | Query::RepairKey(_, i) => self.finalize(&mut p.kids[0], i, f),
            Query::PossGroup { input, .. } | Query::CertGroup { input, .. } => {
                self.finalize(&mut p.kids[0], input, f)
            }
            Query::Product(a, b)
            | Query::Union(a, b)
            | Query::Intersect(a, b)
            | Query::Difference(a, b) => {
                self.finalize(&mut p.kids[0], a, f);
                self.finalize(&mut p.kids[1], b, f);
            }
        }
        p.all_e = !p.f && p.kids.iter().all(|k| k.all_e);
    }
}

/// Build the per-node representation plan for `q` over `ws`, using the
/// PR 5 relation statistics for the group estimates.
pub fn plan_query(q: &Query, ws: &WorldSet) -> RepPlan {
    plan_with(q, ws.len(), &|name, attrs| {
        let idx = ws.index_of(name)?;
        let w = ws.iter().next()?;
        let r = w.rel(idx);
        let stats = r.stats();
        let d = attrs
            .iter()
            .filter_map(|a| stats.distinct_of(r.schema(), a))
            .max()?;
        Some((d.min(stats.rows).max(1)) as u128)
    })
}

/// [`plan_query`] for callers that hold a *succinct representation*
/// rather than enumerated worlds: `world_count` is the representation's
/// world count and `distinct` supplies the distinct-count statistic for a
/// base relation's attributes (`None` falls back to the default group
/// estimate of 4). This lets the Figure-6 translation and `EXPLAIN`
/// consult the planner without first decoding into explicit worlds.
pub fn plan_with(
    q: &Query,
    world_count: usize,
    distinct: &dyn Fn(&str, &[relalg::Attr]) -> Option<u128>,
) -> RepPlan {
    let planner = Planner {
        wc: (world_count as u128).max(1),
        min: config::FACTORIZE_MIN_WORLDS.get() as u128,
        distinct,
    };
    let mut plan = planner.build(q);
    planner.finalize(&mut plan, q, false);
    plan
}

/// Evaluate `q` strictly on the factorized path (no fallback): identical
/// output to [`crate::eval_named`] whenever it succeeds. Budget overflows
/// surface as [`FactorError::Budget`]. Every choice-carrying region runs
/// factored regardless of cost (the equivalence-testing entry); the
/// cost-driven mixed plan is [`eval_planned`].
pub fn eval_factorized(q: &Query, ws: &WorldSet, out_name: &str) -> FResult<WorldSet> {
    let fs = FactoredSet::from_world_set(ws)?;
    let mut fx = Fx { fs, ws };
    match fx.eval(q)? {
        Rep::F { rel, w } => fx.fs.expand_with(&w, Some((out_name, &rel))),
        Rep::E(worlds) => {
            let mut names = ws.rel_names().to_vec();
            names.push(out_name.to_string());
            Ok(WorldSet::from_worlds(names, worlds)?)
        }
    }
}

/// Collect the base relations read by the plan's factored regions:
/// the only tables the conversion needs to factorize. Enumerated regions
/// read the original world-set directly, so everything else rides through
/// unconverted (see [`FactoredSet::from_world_set_filtered`]).
fn factored_rels(q: &Query, p: &RepPlan, out: &mut std::collections::BTreeSet<String>) {
    if p.f {
        if let Query::Rel(name) = q {
            out.insert(name.clone());
        }
    }
    match q {
        Query::Rel(_) => {}
        Query::Select(_, i)
        | Query::Project(_, i)
        | Query::Rename(_, i)
        | Query::Poss(i)
        | Query::Cert(i)
        | Query::Choice(_, i)
        | Query::RepairKey(_, i) => factored_rels(i, &p.kids[0], out),
        Query::PossGroup { input, .. } | Query::CertGroup { input, .. } => {
            factored_rels(input, &p.kids[0], out)
        }
        Query::Product(a, b)
        | Query::Union(a, b)
        | Query::Intersect(a, b)
        | Query::Difference(a, b) => {
            factored_rels(a, &p.kids[0], out);
            factored_rels(b, &p.kids[1], out);
        }
    }
}

/// Evaluate `q` under an explicit [`RepPlan`] (see [`Fx::eval_p`]):
/// factored regions run succinct, enumerated regions run the reference
/// semantics, conversions happen exactly at the plan's `Convert` nodes.
/// Only the relations the factored regions actually read are converted —
/// the enumerated regions' inputs skip the factorization scan entirely.
/// No fallback: errors surface to the caller.
pub fn eval_planned(q: &Query, ws: &WorldSet, out_name: &str, plan: &RepPlan) -> FResult<WorldSet> {
    let mut needed = std::collections::BTreeSet::new();
    factored_rels(q, plan, &mut needed);
    let fs = FactoredSet::from_world_set_filtered(ws, &|name| needed.contains(name))?;
    let mut fx = Fx { fs, ws };
    match fx.eval_p(q, plan)? {
        Rep::F { rel, w } => fx.fs.expand_with(&w, Some((out_name, &rel))),
        Rep::E(worlds) => {
            let mut names = ws.rel_names().to_vec();
            names.push(out_name.to_string());
            Ok(WorldSet::from_worlds(names, worlds)?)
        }
    }
}

/// Evaluate `q`, choosing the representation *per operator*: the
/// [`RepPlan`] assigns each node factored or enumerated, and the mixed
/// evaluator converts at the plan's region boundaries. Transparent
/// fallback to the reference evaluator on *any* factorized error (the
/// enumerated result — or error — is authoritative). An all-enumerated
/// plan short-circuits to the reference evaluator directly.
pub fn eval_named_routed(q: &Query, ws: &WorldSet, out_name: &str) -> Result<WorldSet> {
    if config::factorize_enabled() && !ws.is_empty() {
        let plan = plan_query(q, ws);
        if plan.any_f() {
            if let Ok(out) = eval_planned(q, ws, out_name, &plan) {
                return Ok(out);
            }
        }
    }
    crate::semantics::eval_named(q, ws, out_name)
}

/// Whether the planner routes any part of `q` to the factorized path:
/// factorization enabled, a non-empty input, and at least one node whose
/// cost rule fires (subtree peak at least `GAIN ×` the worlds an
/// enumerated plan would touch, and no smaller than
/// `WSDB_FACTORIZE_MIN_WORLDS`).
pub fn should_factorize(q: &Query, ws: &WorldSet) -> bool {
    config::factorize_enabled() && !ws.is_empty() && plan_query(q, ws).any_f()
}

/// Estimate of the number of implicit worlds `q` creates over `ws`: the
/// *peak* output estimate across the plan — `|ws|` times the splitting
/// factor of the widest intermediate. Choice nodes multiply by their
/// estimated group count (the PR 5 statistics of the base relation they
/// resolve to, or a default of 4); `poss`/`cert` collapse back to the
/// base count; binary nodes pair operand worlds. Saturating; an
/// estimate, not a bound — used only to steer the representation choice
/// and reported by `EXPLAIN`.
pub fn implicit_world_estimate(q: &Query, ws: &WorldSet) -> u128 {
    plan_query(q, ws).peak
}

/// [`implicit_world_estimate`] over a succinct representation (see
/// [`plan_with`] for the `distinct` contract).
pub fn implicit_world_estimate_with(
    q: &Query,
    world_count: usize,
    distinct: &dyn Fn(&str, &[relalg::Attr]) -> Option<u128>,
) -> u128 {
    plan_with(q, world_count, distinct).peak
}

/// Estimated number of `χ_U` groups: when the choice input resolves to a
/// base relation through unary operators (renames map the `U`-attributes
/// back to the base schema), the `distinct` statistic of the
/// `U`-attributes from that relation; else a default of 4.
fn group_estimate(
    attrs: &[relalg::Attr],
    inner: &Query,
    distinct: &dyn Fn(&str, &[relalg::Attr]) -> Option<u128>,
) -> u128 {
    const DEFAULT: u128 = 4;
    let mut cur = inner;
    let mut attrs: Vec<relalg::Attr> = attrs.to_vec();
    let name = loop {
        match cur {
            Query::Rel(n) => break n,
            Query::Select(_, i) | Query::Project(_, i) | Query::Choice(_, i) => cur = i,
            Query::Rename(map, i) => {
                for a in &mut attrs {
                    if let Some((src, _)) = map.iter().find(|(_, dst)| dst == a) {
                        *a = src.clone();
                    }
                }
                cur = i;
            }
            _ => return DEFAULT,
        }
    };
    distinct(name, &attrs).unwrap_or(DEFAULT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::attrs;

    fn flights() -> Relation {
        Relation::table(
            &["Dep", "Arr"],
            &[
                &["FRA", "BCN"],
                &["FRA", "ATL"],
                &["PAR", "ATL"],
                &["PAR", "BCN"],
                &["PHL", "ATL"],
            ],
        )
    }

    fn single() -> WorldSet {
        WorldSet::single(vec![("Flights", flights())])
    }

    fn both(q: &Query, ws: &WorldSet) {
        let fact = eval_factorized(q, ws, "Q").expect("factorized path");
        let reference = crate::eval_named(q, ws, "Q").expect("enumerated path");
        assert_eq!(fact, reference);
    }

    #[test]
    fn factorized_matches_enumerated_on_core_shapes() {
        let ws = single();
        let dep = attrs(&["Dep"]);
        let arr = attrs(&["Arr"]);
        both(&Query::rel("Flights"), &ws);
        both(&Query::rel("Flights").choice(dep.clone()), &ws);
        both(
            &Query::rel("Flights")
                .choice(dep.clone())
                .project(arr.clone()),
            &ws,
        );
        both(
            &Query::rel("Flights")
                .choice(dep.clone())
                .project(arr.clone())
                .poss(),
            &ws,
        );
        both(
            &Query::rel("Flights")
                .choice(dep.clone())
                .project(arr.clone())
                .cert(),
            &ws,
        );
        both(
            &Query::rel("Flights")
                .choice(dep.clone())
                .choice(arr.clone()),
            &ws,
        );
    }

    #[test]
    fn factorized_matches_enumerated_on_binary_shapes() {
        let ws = single();
        let dep = attrs(&["Dep"]);
        let arr = attrs(&["Arr"]);
        // Independent choices on the two operands of a product.
        let left = Query::rel("Flights")
            .choice(dep.clone())
            .project(arr.clone());
        let right = Query::rel("Flights")
            .choice(dep.clone())
            .project(arr.clone())
            .rename(vec![("Arr".into(), "Arr2".into())]);
        both(&left.clone().product(right), &ws);
        // Difference against a choice.
        let q = Query::rel("Flights")
            .project(arr.clone())
            .difference(left.clone());
        both(&q, &ws);
        // Union and intersection.
        both(
            &left
                .clone()
                .union(Query::rel("Flights").project(arr.clone())),
            &ws,
        );
        both(
            &left
                .clone()
                .intersect(Query::rel("Flights").project(arr.clone())),
            &ws,
        );
    }

    #[test]
    fn decode_boundaries_match_enumerated() {
        let r = Relation::table(&["A", "B"], &[&[1i64, 2], &[2, 3], &[2, 4], &[3, 2]]);
        let ws = WorldSet::single(vec![("R", r)]);
        both(
            &Query::rel("R")
                .choice(attrs(&["A"]))
                .poss_group(attrs(&["B"]), attrs(&["A", "B"])),
            &ws,
        );
        both(
            &Query::rel("R")
                .choice(attrs(&["A"]))
                .cert_group(attrs(&["B"]), attrs(&["B"])),
            &ws,
        );
        both(&Query::rel("R").repair_by_key(attrs(&["A"])), &ws);
        // A choice *after* a decode boundary continues enumerated.
        both(
            &Query::rel("R")
                .repair_by_key(attrs(&["A"]))
                .choice(attrs(&["A"])),
            &ws,
        );
    }

    #[test]
    fn routed_equals_enumerated_and_falls_back() {
        let ws = single();
        let q = Query::rel("Flights")
            .choice(attrs(&["Dep"]))
            .project(attrs(&["Arr"]));
        assert_eq!(
            eval_named_routed(&q, &ws, "Q").unwrap(),
            crate::eval_named(&q, &ws, "Q").unwrap()
        );
        // Unknown table: routed must surface the enumerated error.
        let bad = Query::rel("Nope").choice(attrs(&["Dep"]));
        assert!(eval_named_routed(&bad, &ws, "Q").is_err());
    }

    /// A table with `n` distinct `K` values in one world.
    fn keyed(n: i64) -> WorldSet {
        let rows: Vec<Vec<i64>> = (0..n).map(|k| vec![k, k % 3]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        WorldSet::single(vec![("T", Relation::table(&["K", "V"], &refs))])
    }

    #[test]
    fn chooser_uses_stats_and_toggle() {
        let ws = single();
        let q3 = Query::rel("Flights").choice(attrs(&["Dep"]));
        // 1 world × 3 Dep groups.
        assert_eq!(implicit_world_estimate(&q3, &ws), 3);
        // Chained choices multiply: 3 Dep × 2 Arr.
        let q6 = Query::rel("Flights")
            .choice(attrs(&["Dep"]))
            .choice(attrs(&["Arr"]));
        assert_eq!(implicit_world_estimate(&q6, &ws), 6);
        // Pin the toggle on so the assertions hold under the CI
        // `WSDB_NO_FACTORIZE=1` leg too.
        config::set_factorize_enabled(Some(true));
        assert!(!should_factorize(&q6, &ws), "6 < default threshold 16");
        // A query that *ends* in its widest choice gains nothing from
        // factorizing: every implicit world is decoded at the output
        // anyway, so the per-node rule keeps it enumerated.
        let q_big = q6.clone().choice(attrs(&["Dep"]));
        assert_eq!(implicit_world_estimate(&q_big, &ws), 18);
        assert!(
            !should_factorize(&q_big, &ws),
            "χ-ended query decodes its peak at the output"
        );
        // A cert-closed query collapses back to one world: 20 implicit
        // worlds never materialize, so the factored path pays.
        let kws = keyed(20);
        let q_cert = Query::rel("T")
            .choice(attrs(&["K"]))
            .project(attrs(&["V"]))
            .cert();
        assert_eq!(implicit_world_estimate(&q_cert, &kws), 20);
        assert!(should_factorize(&q_cert, &kws));
        // No choice node ⇒ never factorize.
        assert!(!should_factorize(&Query::rel("Flights"), &ws));
        // The runtime toggle wins.
        config::set_factorize_enabled(Some(false));
        assert!(!should_factorize(&q_cert, &kws));
        config::set_factorize_enabled(None);
    }

    /// `wc` worlds sharing a `T` with `groups` distinct `K` values, told
    /// apart by a one-row marker table `M`.
    fn multi(wc: usize, groups: i64) -> WorldSet {
        let rows: Vec<Vec<i64>> = (0..groups).map(|k| vec![k, k % 3]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let t = Relation::table(&["K", "V"], &refs);
        let worlds: Vec<World> = (0..wc)
            .map(|i| {
                World::new(vec![
                    t.clone(),
                    Relation::table(&["M"], &[&[i as i64]]),
                ])
            })
            .collect();
        WorldSet::from_worlds(vec!["T".to_string(), "M".to_string()], worlds).unwrap()
    }

    #[test]
    fn planner_builds_mixed_plans() {
        config::set_factorize_enabled(Some(true));
        // 4 base worlds, 8 K-groups: a single-choice tail peaks at
        // 4×8 = 32 < GAIN·(4+4) = 64 (enumerated), while a union of two
        // choices squares the split — peak 4×8×3 = 96 ≥ 64 (factored).
        let ws = multi(4, 8);
        let op1 = Query::rel("T")
            .choice(attrs(&["K"]))
            .project(attrs(&["V"]))
            .union(Query::rel("T").choice(attrs(&["V"])).project(attrs(&["V"])))
            .cert();
        let op2 = Query::rel("T")
            .choice(attrs(&["K"]))
            .project(attrs(&["V"]))
            .poss();
        let q = op1.clone().intersect(op2.clone());
        let plan = plan_query(&q, &ws);
        assert_eq!(plan.card, RepCard::E, "mixed: the intersect pairs worlds");
        assert_eq!(plan.kids[0].card, RepCard::Convert, "cert region expands here");
        assert_eq!(plan.kids[0].kids[0].card, RepCard::F, "union stays factored");
        assert_eq!(plan.kids[1].card, RepCard::E, "poss tail stays enumerated");
        assert!(plan.kids[1].all_e);
        assert!(plan.any_f());
        // The mixed plan still matches the reference byte-for-byte.
        let planned = eval_planned(&q, &ws, "Q", &plan).expect("planned path");
        let reference = crate::eval_named(&q, &ws, "Q").expect("enumerated path");
        assert_eq!(planned, reference);
        // The poss-only query plans all-enumerated end-to-end (the
        // merge_poss parity fix: no conversion overhead at all).
        let plan2 = plan_query(&op2, &ws);
        assert!(!plan2.any_f());
        assert!(plan2.all_e);
        // The cert-closed query plans factored bottom-to-top.
        let plan1 = plan_query(&op1, &ws);
        assert_eq!(plan1.card, RepCard::Convert, "decoded at the output");
        assert_eq!(plan1.kids[0].card, RepCard::F);
        assert_eq!(plan1.kids[0].kids[0].kids[0].kids[0].card, RepCard::F, "Rel leaf");
        config::set_factorize_enabled(None);
    }

    #[test]
    fn planned_matches_reference_on_forced_switches() {
        config::set_factorize_enabled(Some(true));
        let ws = multi(4, 8);
        // Decode boundary above a factored region: the region converts,
        // the grouped tail runs enumerated.
        let region = Query::rel("T")
            .choice(attrs(&["K"]))
            .project(attrs(&["V"]))
            .union(Query::rel("T").choice(attrs(&["V"])).project(attrs(&["V"])))
            .cert();
        let q = region.cert_group(attrs(&["V"]), attrs(&["V"]));
        let plan = plan_query(&q, &ws);
        assert_eq!(plan.card, RepCard::E, "decode boundary is enumerated");
        assert_eq!(plan.kids[0].card, RepCard::Convert);
        let planned = eval_planned(&q, &ws, "Q", &plan).expect("planned path");
        let reference = crate::eval_named(&q, &ws, "Q").expect("enumerated path");
        assert_eq!(planned, reference);
        config::set_factorize_enabled(None);
    }
}
