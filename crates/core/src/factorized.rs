//! Factorized evaluation of World-set Algebra: the algebra runs over the
//! succinct [`FactoredSet`] representation, and explicit worlds are only
//! materialized at *decode boundaries*.
//!
//! The evaluator mirrors [`crate::semantics`] node for node, but carries a
//! mixed representation ([`Rep`]): a branch is either **factored** — a
//! lineage-carrying answer [`Relation`] plus a world-validity [`Dnf`] over
//! the shared [`FactoredSet`] — or **enumerated**, the explicit world list
//! of the reference semantics. Operators translate as follows:
//!
//! * `σ`/`π`/`δ` run directly on the factored answer (lineage rides along
//!   as an ordinary column through the vectorized kernels);
//! * `×`/`∪`/`∩`/`−` conjoin the operands' validity formulas — the
//!   factorized analogue of the reference evaluator's prefix pairing —
//!   and combine lineage per tuple, checking mutual exclusion at join
//!   time;
//! * `χ_U` allocates one fresh choice variable instead of materializing
//!   one world per group: `n` chained choices multiply the implicit world
//!   count while the representation grows by `n` variables;
//! * `poss`/`cert` fold the lineage column back to certainty without
//!   expanding;
//! * `pγ`/`cγ` (grouping reads *answers across worlds* as first-class
//!   values) and `repair-by-key` are decode boundaries: the branch is
//!   expanded to explicit worlds and evaluation continues enumerated.
//!
//! [`eval_named_routed`] is the public entry: a cost-model-driven chooser
//! ([`should_factorize`], using the [`Relation::stats`] cardinalities to
//! estimate the implicit world count) decides factorized vs. enumerated
//! per query, and *any* factorized error — a representation budget
//! overflow or a genuine algebra error — falls back to the reference
//! evaluator, whose result (or error) is authoritative. The strict entry
//! [`eval_factorized`] is exposed for equivalence testing: modulo
//! fallback, the two paths return byte-identical world-sets.

use relalg::{config, Relation, Result};
use uldb::factored::WORLDS_BUDGET;
use uldb::{Dnf, FResult, FactorError, FactoredSet};
use worldset::{World, WorldSet};

use crate::semantics::{
    apply_binary, apply_choice, apply_grouped, apply_repair, apply_unary, dedup_worlds,
};
use crate::Query;

/// A branch of the evaluation: factored (answer relation + validity
/// formula over the shared variable space) or enumerated (explicit
/// worlds, exactly as in [`crate::semantics`]).
enum Rep {
    F { rel: Relation, w: Dnf },
    E(Vec<World>),
}

struct Fx {
    fs: FactoredSet,
}

impl Fx {
    fn eval(&mut self, q: &Query) -> FResult<Rep> {
        match q {
            Query::Rel(name) => {
                let rel = self
                    .fs
                    .table(name)
                    .ok_or_else(|| relalg::RelalgError::UnknownTable { name: name.clone() })?
                    .clone();
                let w = self.fs.worlds().clone();
                Ok(Rep::F { rel, w })
            }

            Query::Select(p, inner) => match self.eval(inner)? {
                Rep::F { rel, w } => Ok(Rep::F {
                    rel: self.fs.select(&rel, p)?,
                    w,
                }),
                Rep::E(input) => Ok(Rep::E(dedup_worlds(apply_unary(&input, |r| r.select(p))?))),
            },
            Query::Project(attrs, inner) => match self.eval(inner)? {
                Rep::F { rel, w } => Ok(Rep::F {
                    rel: self.fs.project(&rel, attrs)?,
                    w,
                }),
                Rep::E(input) => Ok(Rep::E(dedup_worlds(apply_unary(&input, |r| {
                    r.project(attrs)
                })?))),
            },
            Query::Rename(map, inner) => match self.eval(inner)? {
                Rep::F { rel, w } => Ok(Rep::F {
                    rel: self.fs.rename(&rel, map)?,
                    w,
                }),
                Rep::E(input) => Ok(Rep::E(dedup_worlds(apply_unary(&input, |r| {
                    r.rename(map)
                })?))),
            },

            Query::Product(a, b) => self.binary(a, b, BinOp::Product),
            Query::Union(a, b) => self.binary(a, b, BinOp::Union),
            Query::Intersect(a, b) => self.binary(a, b, BinOp::Intersect),
            Query::Difference(a, b) => self.binary(a, b, BinOp::Difference),

            Query::Choice(attrs, inner) => match self.eval(inner)? {
                Rep::F { rel, w } => {
                    let (rel, w) = self.fs.choice(&rel, attrs, &w)?;
                    Ok(Rep::F { rel, w })
                }
                Rep::E(input) => Ok(Rep::E(dedup_worlds(apply_choice(&input, attrs)?))),
            },

            Query::Poss(inner) => match self.eval(inner)? {
                // The merged answer is certain (lineage ⊤) and every
                // valid world keeps its prefix: `w` is unchanged.
                Rep::F { rel, w } => Ok(Rep::F {
                    rel: self.fs.poss(&rel, &w)?,
                    w,
                }),
                Rep::E(input) => Ok(Rep::E(dedup_worlds(apply_grouped(
                    &input, None, None, true,
                )?))),
            },
            Query::Cert(inner) => match self.eval(inner)? {
                Rep::F { rel, w } => Ok(Rep::F {
                    rel: self.fs.cert(&rel, &w)?,
                    w,
                }),
                Rep::E(input) => Ok(Rep::E(dedup_worlds(apply_grouped(
                    &input, None, None, false,
                )?))),
            },

            // Decode boundaries: grouping compares answer *sets* across
            // worlds — expand and continue enumerated.
            Query::PossGroup { group, proj, input } => {
                let rep = self.eval(input)?;
                let worlds = self.to_worlds(rep)?;
                Ok(Rep::E(dedup_worlds(apply_grouped(
                    &worlds,
                    Some(group),
                    Some(proj),
                    true,
                )?)))
            }
            Query::CertGroup { group, proj, input } => {
                let rep = self.eval(input)?;
                let worlds = self.to_worlds(rep)?;
                Ok(Rep::E(dedup_worlds(apply_grouped(
                    &worlds,
                    Some(group),
                    Some(proj),
                    false,
                )?)))
            }
            Query::RepairKey(key, inner) => {
                let rep = self.eval(inner)?;
                let worlds = self.to_worlds(rep)?;
                Ok(Rep::E(dedup_worlds(apply_repair(&worlds, key)?)))
            }
        }
    }

    fn binary(&mut self, a: &Query, b: &Query, op: BinOp) -> FResult<Rep> {
        let ra = self.eval(a)?;
        let rb = self.eval(b)?;
        match (ra, rb) {
            (Rep::F { rel: la, w: wa }, Rep::F { rel: lb, w: wb }) => {
                // Validity product = the reference evaluator's pairing of
                // operand worlds over the shared prefix: operand-private
                // choice variables stay independent, shared base
                // variables must agree.
                let w = wa
                    .and_dnf(&wb, self.fs.doms(), WORLDS_BUDGET)
                    .ok_or(FactorError::Budget("binary validity product"))?;
                let rel = match op {
                    BinOp::Product => self.fs.product(&la, &lb)?,
                    BinOp::Union => self.fs.union(&la, &lb)?,
                    BinOp::Intersect => self.fs.intersect(&la, &lb)?,
                    BinOp::Difference => self.fs.difference(&la, &lb)?,
                };
                Ok(Rep::F { rel, w })
            }
            (ra, rb) => {
                let left = self.to_worlds(ra)?;
                let right = self.to_worlds(rb)?;
                let out = match op {
                    BinOp::Product => apply_binary(&left, &right, |l, r| l.product(r)),
                    BinOp::Union => apply_binary(&left, &right, |l, r| l.union(r)),
                    BinOp::Intersect => apply_binary(&left, &right, |l, r| l.intersect(r)),
                    BinOp::Difference => apply_binary(&left, &right, |l, r| l.difference(r)),
                }?;
                Ok(Rep::E(dedup_worlds(out)))
            }
        }
    }

    /// Decode a branch to explicit worlds (prefix relations + answer
    /// last), the input format of the `apply_*` helpers.
    fn to_worlds(&self, rep: Rep) -> FResult<Vec<World>> {
        match rep {
            Rep::E(worlds) => Ok(worlds),
            Rep::F { rel, w } => {
                let ws = self.fs.expand_with(&w, Some(("Q", &rel)))?;
                Ok(ws.worlds())
            }
        }
    }
}

enum BinOp {
    Product,
    Union,
    Intersect,
    Difference,
}

/// Evaluate `q` strictly on the factorized path (no fallback): identical
/// output to [`crate::eval_named`] whenever it succeeds. Budget overflows
/// surface as [`FactorError::Budget`].
pub fn eval_factorized(q: &Query, ws: &WorldSet, out_name: &str) -> FResult<WorldSet> {
    let fs = FactoredSet::from_world_set(ws)?;
    let mut fx = Fx { fs };
    match fx.eval(q)? {
        Rep::F { rel, w } => fx.fs.expand_with(&w, Some((out_name, &rel))),
        Rep::E(worlds) => {
            let mut names = ws.rel_names().to_vec();
            names.push(out_name.to_string());
            Ok(WorldSet::from_worlds(names, worlds)?)
        }
    }
}

/// Evaluate `q`, choosing the representation per query: the factorized
/// path when [`should_factorize`] fires, with transparent fallback to the
/// reference evaluator on *any* factorized error (the enumerated result —
/// or error — is authoritative).
pub fn eval_named_routed(q: &Query, ws: &WorldSet, out_name: &str) -> Result<WorldSet> {
    if should_factorize(q, ws) {
        if let Ok(out) = eval_factorized(q, ws, out_name) {
            return Ok(out);
        }
    }
    crate::semantics::eval_named(q, ws, out_name)
}

/// Whether the chooser routes `q` to the factorized path: factorization
/// enabled, a non-empty input, at least one world-splitting `choice-of`
/// to factor, and an implicit world count estimate at or above
/// `WSDB_FACTORIZE_MIN_WORLDS` (default 16) — below that, enumerated
/// evaluation is cheap and avoids the conversion overhead.
pub fn should_factorize(q: &Query, ws: &WorldSet) -> bool {
    config::factorize_enabled()
        && !ws.is_empty()
        && has_choice(q)
        && implicit_world_estimate(q, ws) >= config::FACTORIZE_MIN_WORLDS.get() as u128
}

fn has_choice(q: &Query) -> bool {
    match q {
        Query::Choice(_, _) => true,
        Query::Rel(_) => false,
        Query::Select(_, i)
        | Query::Project(_, i)
        | Query::Rename(_, i)
        | Query::Poss(i)
        | Query::Cert(i)
        | Query::RepairKey(_, i) => has_choice(i),
        Query::PossGroup { input, .. } | Query::CertGroup { input, .. } => has_choice(input),
        Query::Product(a, b)
        | Query::Union(a, b)
        | Query::Intersect(a, b)
        | Query::Difference(a, b) => has_choice(a) || has_choice(b),
    }
}

/// Estimate of the number of implicit worlds `q` creates over `ws`:
/// `|ws|` times the per-world splitting factor of the query tree. Choice
/// nodes contribute their estimated group count (the PR 5 statistics of
/// the base relation they resolve to, or a default of 4); binary nodes
/// pair operand worlds, multiplying the estimates. Saturating; an
/// estimate, not a bound — used only to steer the representation choice
/// and reported by `EXPLAIN`.
pub fn implicit_world_estimate(q: &Query, ws: &WorldSet) -> u128 {
    implicit_world_estimate_with(q, ws.len(), &|name, attrs| {
        let idx = ws.index_of(name)?;
        let w = ws.iter().next()?;
        let r = w.rel(idx);
        let stats = r.stats();
        let d = attrs
            .iter()
            .filter_map(|a| stats.distinct_of(r.schema(), a))
            .max()?;
        Some((d.min(stats.rows).max(1)) as u128)
    })
}

/// [`implicit_world_estimate`] for callers that hold a *succinct
/// representation* rather than enumerated worlds: `world_count` is the
/// representation's world count, and `distinct` supplies the
/// distinct-count statistic for a base relation's attributes (e.g. from
/// an inlined table's column statistics, which over-count per-world
/// groups — acceptable for an upper-bound steer). `None` from the lookup
/// falls back to the default group estimate of 4. This lets the Figure-6
/// translation route consult the chooser without first decoding its
/// representation into explicit worlds.
pub fn implicit_world_estimate_with(
    q: &Query,
    world_count: usize,
    distinct: &dyn Fn(&str, &[relalg::Attr]) -> Option<u128>,
) -> u128 {
    (world_count as u128).saturating_mul(split_estimate(q, distinct))
}

fn split_estimate(q: &Query, distinct: &dyn Fn(&str, &[relalg::Attr]) -> Option<u128>) -> u128 {
    match q {
        Query::Rel(_) => 1,
        Query::Select(_, i) | Query::Project(_, i) | Query::Rename(_, i) => {
            split_estimate(i, distinct)
        }
        // poss/cert/pγ/cγ merge answers but keep every world.
        Query::Poss(i) | Query::Cert(i) => split_estimate(i, distinct),
        Query::PossGroup { input, .. } | Query::CertGroup { input, .. } => {
            split_estimate(input, distinct)
        }
        Query::Choice(attrs, i) => {
            split_estimate(i, distinct).saturating_mul(group_estimate(attrs, i, distinct))
        }
        // Repairs multiply by the product of key-group sizes; without
        // per-group statistics use a small constant.
        Query::RepairKey(_, i) => split_estimate(i, distinct).saturating_mul(4),
        Query::Product(a, b)
        | Query::Union(a, b)
        | Query::Intersect(a, b)
        | Query::Difference(a, b) => {
            split_estimate(a, distinct).saturating_mul(split_estimate(b, distinct))
        }
    }
}

/// Estimated number of `χ_U` groups: when the choice input resolves to a
/// base relation through unary operators (renames map the `U`-attributes
/// back to the base schema), the `distinct` statistic of the
/// `U`-attributes from that relation; else a default of 4.
fn group_estimate(
    attrs: &[relalg::Attr],
    inner: &Query,
    distinct: &dyn Fn(&str, &[relalg::Attr]) -> Option<u128>,
) -> u128 {
    const DEFAULT: u128 = 4;
    let mut cur = inner;
    let mut attrs: Vec<relalg::Attr> = attrs.to_vec();
    let name = loop {
        match cur {
            Query::Rel(n) => break n,
            Query::Select(_, i) | Query::Project(_, i) | Query::Choice(_, i) => cur = i,
            Query::Rename(map, i) => {
                for a in &mut attrs {
                    if let Some((src, _)) = map.iter().find(|(_, dst)| dst == a) {
                        *a = src.clone();
                    }
                }
                cur = i;
            }
            _ => return DEFAULT,
        }
    };
    distinct(name, &attrs).unwrap_or(DEFAULT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::attrs;

    fn flights() -> Relation {
        Relation::table(
            &["Dep", "Arr"],
            &[
                &["FRA", "BCN"],
                &["FRA", "ATL"],
                &["PAR", "ATL"],
                &["PAR", "BCN"],
                &["PHL", "ATL"],
            ],
        )
    }

    fn single() -> WorldSet {
        WorldSet::single(vec![("Flights", flights())])
    }

    fn both(q: &Query, ws: &WorldSet) {
        let fact = eval_factorized(q, ws, "Q").expect("factorized path");
        let reference = crate::eval_named(q, ws, "Q").expect("enumerated path");
        assert_eq!(fact, reference);
    }

    #[test]
    fn factorized_matches_enumerated_on_core_shapes() {
        let ws = single();
        let dep = attrs(&["Dep"]);
        let arr = attrs(&["Arr"]);
        both(&Query::rel("Flights"), &ws);
        both(&Query::rel("Flights").choice(dep.clone()), &ws);
        both(
            &Query::rel("Flights")
                .choice(dep.clone())
                .project(arr.clone()),
            &ws,
        );
        both(
            &Query::rel("Flights")
                .choice(dep.clone())
                .project(arr.clone())
                .poss(),
            &ws,
        );
        both(
            &Query::rel("Flights")
                .choice(dep.clone())
                .project(arr.clone())
                .cert(),
            &ws,
        );
        both(
            &Query::rel("Flights")
                .choice(dep.clone())
                .choice(arr.clone()),
            &ws,
        );
    }

    #[test]
    fn factorized_matches_enumerated_on_binary_shapes() {
        let ws = single();
        let dep = attrs(&["Dep"]);
        let arr = attrs(&["Arr"]);
        // Independent choices on the two operands of a product.
        let left = Query::rel("Flights")
            .choice(dep.clone())
            .project(arr.clone());
        let right = Query::rel("Flights")
            .choice(dep.clone())
            .project(arr.clone())
            .rename(vec![("Arr".into(), "Arr2".into())]);
        both(&left.clone().product(right), &ws);
        // Difference against a choice.
        let q = Query::rel("Flights")
            .project(arr.clone())
            .difference(left.clone());
        both(&q, &ws);
        // Union and intersection.
        both(
            &left
                .clone()
                .union(Query::rel("Flights").project(arr.clone())),
            &ws,
        );
        both(
            &left
                .clone()
                .intersect(Query::rel("Flights").project(arr.clone())),
            &ws,
        );
    }

    #[test]
    fn decode_boundaries_match_enumerated() {
        let r = Relation::table(&["A", "B"], &[&[1i64, 2], &[2, 3], &[2, 4], &[3, 2]]);
        let ws = WorldSet::single(vec![("R", r)]);
        both(
            &Query::rel("R")
                .choice(attrs(&["A"]))
                .poss_group(attrs(&["B"]), attrs(&["A", "B"])),
            &ws,
        );
        both(
            &Query::rel("R")
                .choice(attrs(&["A"]))
                .cert_group(attrs(&["B"]), attrs(&["B"])),
            &ws,
        );
        both(&Query::rel("R").repair_by_key(attrs(&["A"])), &ws);
        // A choice *after* a decode boundary continues enumerated.
        both(
            &Query::rel("R")
                .repair_by_key(attrs(&["A"]))
                .choice(attrs(&["A"])),
            &ws,
        );
    }

    #[test]
    fn routed_equals_enumerated_and_falls_back() {
        let ws = single();
        let q = Query::rel("Flights")
            .choice(attrs(&["Dep"]))
            .project(attrs(&["Arr"]));
        assert_eq!(
            eval_named_routed(&q, &ws, "Q").unwrap(),
            crate::eval_named(&q, &ws, "Q").unwrap()
        );
        // Unknown table: routed must surface the enumerated error.
        let bad = Query::rel("Nope").choice(attrs(&["Dep"]));
        assert!(eval_named_routed(&bad, &ws, "Q").is_err());
    }

    #[test]
    fn chooser_uses_stats_and_toggle() {
        let ws = single();
        let q3 = Query::rel("Flights").choice(attrs(&["Dep"]));
        // 1 world × 3 Dep groups.
        assert_eq!(implicit_world_estimate(&q3, &ws), 3);
        // Chained choices multiply: 3 Dep × 2 Arr.
        let q6 = Query::rel("Flights")
            .choice(attrs(&["Dep"]))
            .choice(attrs(&["Arr"]));
        assert_eq!(implicit_world_estimate(&q6, &ws), 6);
        // Pin the toggle on so the assertions hold under the CI
        // `WSDB_NO_FACTORIZE=1` leg too.
        config::set_factorize_enabled(Some(true));
        assert!(!should_factorize(&q6, &ws), "6 < default threshold 16");
        let q_big = q6.clone().choice(attrs(&["Dep"]));
        assert_eq!(implicit_world_estimate(&q_big, &ws), 18);
        assert!(should_factorize(&q_big, &ws));
        // No choice node ⇒ never factorize.
        assert!(!should_factorize(&Query::rel("Flights"), &ws));
        // The runtime toggle wins.
        config::set_factorize_enabled(Some(false));
        assert!(!should_factorize(&q_big, &ws));
        config::set_factorize_enabled(None);
    }
}
