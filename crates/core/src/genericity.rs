//! Genericity of World-set Algebra (Definitions 4.3/4.4, Proposition 4.5).
//!
//! A query `q` is *generic* iff for world-sets `A ≅θ A′` (isomorphic under a
//! domain bijection `θ`) the answers are isomorphic under the same `θ`:
//! `q(A) ≅θ q(A′)`. The definition "ignores the issue of constants in
//! queries": a query mentioning constant `c` is generic relative to
//! bijections that fix `c`, which is how [`check_generic`] treats it
//! (cf. the remark after Definition 4.4).

use std::collections::BTreeSet;

use relalg::{Operand, Pred, Result, Value};
use worldset::{Bijection, WorldSet};

use crate::{eval, Query};

/// All constants mentioned in selection conditions of `q`. A bijection must
/// fix these for the genericity property to apply as stated.
pub fn query_constants(q: &Query) -> BTreeSet<Value> {
    let mut out = BTreeSet::new();
    collect(q, &mut out);
    out
}

fn collect_pred(p: &Pred, out: &mut BTreeSet<Value>) {
    match p {
        Pred::True | Pred::False => {}
        Pred::Cmp(l, _, r) => {
            if let Operand::Const(v) = l {
                out.insert(*v);
            }
            if let Operand::Const(v) = r {
                out.insert(*v);
            }
        }
        Pred::And(a, b) | Pred::Or(a, b) => {
            collect_pred(a, out);
            collect_pred(b, out);
        }
        Pred::Not(a) => collect_pred(a, out),
    }
}

fn collect(q: &Query, out: &mut BTreeSet<Value>) {
    match q {
        Query::Rel(_) => {}
        Query::Select(p, inner) => {
            collect_pred(p, out);
            collect(inner, out);
        }
        Query::Project(_, inner)
        | Query::Rename(_, inner)
        | Query::Choice(_, inner)
        | Query::Poss(inner)
        | Query::Cert(inner)
        | Query::PossGroup { input: inner, .. }
        | Query::CertGroup { input: inner, .. }
        | Query::RepairKey(_, inner) => collect(inner, out),
        Query::Product(a, b)
        | Query::Union(a, b)
        | Query::Intersect(a, b)
        | Query::Difference(a, b) => {
            collect(a, out);
            collect(b, out);
        }
    }
}

/// Check the genericity property for one instance: evaluate `q` on `ws` and
/// on `θ(ws)` and verify `q(θ(ws)) = θ(q(ws))`.
///
/// Returns `Ok(false)` — a genericity violation — only if `θ` respects the
/// query constants; otherwise the premise of Definition 4.4 does not hold
/// and the check vacuously succeeds.
pub fn check_generic(q: &Query, ws: &WorldSet, theta: &Bijection) -> Result<bool> {
    for c in query_constants(q) {
        if theta.apply_value(&c) != c {
            return Ok(true); // θ does not fix the query constants: vacuous
        }
    }
    let lhs = eval(q, &theta.apply(ws)?)?;
    let rhs = theta.apply(&eval(q, ws)?)?;
    Ok(lhs == rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::{attrs, Relation};

    fn ws() -> WorldSet {
        WorldSet::single(vec![(
            "R",
            Relation::table(&["A", "B"], &[&[1i64, 2], &[2, 3], &[3, 2]]),
        )])
    }

    fn theta() -> Bijection {
        Bijection::from_pairs(vec![
            (Value::int(1), Value::int(100)),
            (Value::int(2), Value::int(200)),
            (Value::int(3), Value::int(300)),
        ])
        .unwrap()
    }

    #[test]
    fn choice_cert_is_generic() {
        let q = Query::rel("R")
            .choice(attrs(&["A"]))
            .project(attrs(&["B"]))
            .cert();
        assert!(check_generic(&q, &ws(), &theta()).unwrap());
    }

    #[test]
    fn grouping_is_generic() {
        let q = Query::rel("R")
            .choice(attrs(&["A"]))
            .poss_group(attrs(&["B"]), attrs(&["A", "B"]));
        assert!(check_generic(&q, &ws(), &theta()).unwrap());
    }

    #[test]
    fn repair_is_generic() {
        let q = Query::rel("R").repair_by_key(attrs(&["B"])).poss();
        assert!(check_generic(&q, &ws(), &theta()).unwrap());
    }

    #[test]
    fn constants_collected_and_respected() {
        let q = Query::rel("R").select(Pred::eq_const("A", 1));
        assert_eq!(query_constants(&q), [Value::int(1)].into());
        // θ moves the constant 1 → vacuously generic.
        assert!(check_generic(&q, &ws(), &theta()).unwrap());
        // A bijection fixing 1 is a real check.
        let fix1 = Bijection::from_pairs(vec![
            (Value::int(2), Value::int(20)),
            (Value::int(3), Value::int(30)),
        ])
        .unwrap();
        assert!(check_generic(&q, &ws(), &fix1).unwrap());
    }
}
