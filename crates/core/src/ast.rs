use std::fmt;

use relalg::{Attr, Pred};

/// A World-set Algebra query (Section 4.1 of the paper).
///
/// The relational core is `σ`, `π`, `δ`, `×`, `∪`, `∩`, `−`; the world-set
/// operators are `χ_U` (choice-of), `poss`/`cert`, the grouping operators
/// `pγ^V_U`/`cγ^V_U`, and the `repair-by-key` extension (Section 4.1,
/// "Extending World-set Algebra"). Joins `⋈_φ` are sugar for `σ_φ(q₁ × q₂)`.
///
/// Builder methods construct queries fluently:
///
/// ```
/// use wsa::Query;
/// use relalg::{attrs, Pred};
///
/// // cert(π_Arr(χ_Dep(HFlights)))  — the trip-planning query (Example 5.6)
/// let q = Query::rel("HFlights")
///     .choice(attrs(&["Dep"]))
///     .project(attrs(&["Arr"]))
///     .cert();
/// assert_eq!(q.to_string(), "cert(π{Arr}(χ{Dep}(HFlights)))");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Query {
    /// Reference to a base relation `Rᵢ` of the world schema.
    Rel(String),
    /// Selection `σ_φ(q)`.
    Select(Pred, Box<Query>),
    /// Projection `π_A(q)`.
    Project(Vec<Attr>, Box<Query>),
    /// Renaming `δ_{A→B}(q)`.
    Rename(Vec<(Attr, Attr)>, Box<Query>),
    /// Product `q₁ × q₂` (disjoint attribute sets).
    Product(Box<Query>, Box<Query>),
    /// Union `q₁ ∪ q₂`.
    Union(Box<Query>, Box<Query>),
    /// Intersection `q₁ ∩ q₂`.
    Intersect(Box<Query>, Box<Query>),
    /// Difference `q₁ − q₂`.
    Difference(Box<Query>, Box<Query>),
    /// Choice-of `χ_U(q)`: one world per value combination of `U`.
    Choice(Vec<Attr>, Box<Query>),
    /// `poss(q)`: union of the answer across all worlds.
    Poss(Box<Query>),
    /// `cert(q)`: intersection of the answer across all worlds.
    Cert(Box<Query>),
    /// `pγ^V_U(q)`: group worlds agreeing on `π_U(answer)`; within each
    /// group replace the answer by the union of `π_V(answer)`.
    PossGroup {
        /// Grouping attributes `U`.
        group: Vec<Attr>,
        /// Projection attributes `V`.
        proj: Vec<Attr>,
        /// Input query.
        input: Box<Query>,
    },
    /// `cγ^V_U(q)`: like [`Query::PossGroup`] with intersection.
    CertGroup {
        /// Grouping attributes `U`.
        group: Vec<Attr>,
        /// Projection attributes `V`.
        proj: Vec<Attr>,
        /// Input query.
        input: Box<Query>,
    },
    /// `repair-by-key_U(q)`: one world per maximal repair in which `U` is a
    /// key of the answer relation (NP-hard; Proposition 4.2).
    RepairKey(Vec<Attr>, Box<Query>),
}

impl Query {
    /// Reference a base relation.
    pub fn rel(name: &str) -> Query {
        Query::Rel(name.to_string())
    }

    /// `σ_φ(self)`.
    pub fn select(self, pred: Pred) -> Query {
        Query::Select(pred, Box::new(self))
    }

    /// `π_A(self)`.
    pub fn project(self, attrs: Vec<Attr>) -> Query {
        Query::Project(attrs, Box::new(self))
    }

    /// `δ_{A→B}(self)`.
    pub fn rename(self, map: Vec<(Attr, Attr)>) -> Query {
        Query::Rename(map, Box::new(self))
    }

    /// `self × other`.
    pub fn product(self, other: Query) -> Query {
        Query::Product(Box::new(self), Box::new(other))
    }

    /// `self ⋈_φ other` — sugar for `σ_φ(self × other)`.
    pub fn join(self, other: Query, pred: Pred) -> Query {
        self.product(other).select(pred)
    }

    /// `self ∪ other`.
    pub fn union(self, other: Query) -> Query {
        Query::Union(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: Query) -> Query {
        Query::Intersect(Box::new(self), Box::new(other))
    }

    /// `self − other`.
    pub fn difference(self, other: Query) -> Query {
        Query::Difference(Box::new(self), Box::new(other))
    }

    /// `χ_U(self)`.
    pub fn choice(self, attrs: Vec<Attr>) -> Query {
        Query::Choice(attrs, Box::new(self))
    }

    /// `poss(self)`.
    pub fn poss(self) -> Query {
        Query::Poss(Box::new(self))
    }

    /// `cert(self)`.
    pub fn cert(self) -> Query {
        Query::Cert(Box::new(self))
    }

    /// `pγ^V_U(self)`.
    pub fn poss_group(self, group: Vec<Attr>, proj: Vec<Attr>) -> Query {
        Query::PossGroup {
            group,
            proj,
            input: Box::new(self),
        }
    }

    /// `cγ^V_U(self)`.
    pub fn cert_group(self, group: Vec<Attr>, proj: Vec<Attr>) -> Query {
        Query::CertGroup {
            group,
            proj,
            input: Box::new(self),
        }
    }

    /// `repair-by-key_U(self)`.
    pub fn repair_by_key(self, key: Vec<Attr>) -> Query {
        Query::RepairKey(key, Box::new(self))
    }

    /// Number of operator nodes (for plan-size comparisons).
    pub fn size(&self) -> usize {
        match self {
            Query::Rel(_) => 1,
            Query::Select(_, q)
            | Query::Project(_, q)
            | Query::Rename(_, q)
            | Query::Choice(_, q)
            | Query::Poss(q)
            | Query::Cert(q)
            | Query::PossGroup { input: q, .. }
            | Query::CertGroup { input: q, .. }
            | Query::RepairKey(_, q) => 1 + q.size(),
            Query::Product(a, b)
            | Query::Union(a, b)
            | Query::Intersect(a, b)
            | Query::Difference(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Whether the query contains any world-set operator (χ, poss, cert,
    /// γ, repair). A query without them is plain relational algebra.
    pub fn is_relational(&self) -> bool {
        match self {
            Query::Rel(_) => true,
            Query::Select(_, q) | Query::Project(_, q) | Query::Rename(_, q) => q.is_relational(),
            Query::Product(a, b)
            | Query::Union(a, b)
            | Query::Intersect(a, b)
            | Query::Difference(a, b) => a.is_relational() && b.is_relational(),
            _ => false,
        }
    }
}

fn attr_list(attrs: &[Attr]) -> String {
    attrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Rel(name) => write!(f, "{name}"),
            Query::Select(p, q) => write!(f, "σ[{p}]({q})"),
            Query::Project(attrs, q) => write!(f, "π{{{}}}({q})", attr_list(attrs)),
            Query::Rename(map, q) => {
                let m = map
                    .iter()
                    .map(|(s, d)| format!("{s}→{d}"))
                    .collect::<Vec<_>>()
                    .join(",");
                write!(f, "δ{{{m}}}({q})")
            }
            Query::Product(a, b) => write!(f, "({a} × {b})"),
            Query::Union(a, b) => write!(f, "({a} ∪ {b})"),
            Query::Intersect(a, b) => write!(f, "({a} ∩ {b})"),
            Query::Difference(a, b) => write!(f, "({a} − {b})"),
            Query::Choice(attrs, q) => write!(f, "χ{{{}}}({q})", attr_list(attrs)),
            Query::Poss(q) => write!(f, "poss({q})"),
            Query::Cert(q) => write!(f, "cert({q})"),
            Query::PossGroup { group, proj, input } => {
                write!(f, "pγ{{{}|{}}}({input})", attr_list(proj), attr_list(group))
            }
            Query::CertGroup { group, proj, input } => {
                write!(f, "cγ{{{}|{}}}({input})", attr_list(proj), attr_list(group))
            }
            Query::RepairKey(attrs, q) => {
                write!(f, "repair-key{{{}}}({q})", attr_list(attrs))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::attrs;

    #[test]
    fn builders_and_display() {
        let q = Query::rel("R")
            .choice(attrs(&["A"]))
            .project(attrs(&["B"]))
            .poss();
        assert_eq!(q.to_string(), "poss(π{B}(χ{A}(R)))");
        assert_eq!(q.size(), 4);
    }

    #[test]
    fn join_is_sugar() {
        let q = Query::rel("R").join(Query::rel("S"), Pred::eq_attr("A", "C"));
        assert!(matches!(q, Query::Select(_, _)));
        assert_eq!(q.to_string(), "σ[A=C]((R × S))");
    }

    #[test]
    fn relational_detection() {
        assert!(Query::rel("R")
            .select(Pred::True)
            .product(Query::rel("S"))
            .is_relational());
        assert!(!Query::rel("R").choice(attrs(&["A"])).is_relational());
        assert!(!Query::rel("R").poss().is_relational());
    }

    #[test]
    fn group_display() {
        let q = Query::rel("R").poss_group(attrs(&["A"]), attrs(&["A", "B"]));
        assert_eq!(q.to_string(), "pγ{A,B|A}(R)");
        let q = Query::rel("R").cert_group(attrs(&["A"]), attrs(&["B"]));
        assert_eq!(q.to_string(), "cγ{B|A}(R)");
    }
}
