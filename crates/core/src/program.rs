//! Sequential WSA programs: each statement materializes a query answer as a
//! new named relation visible to later statements.
//!
//! This is exactly how the paper's Section-2 scenarios proceed ("we proceed
//! constructing the query step by step"): `U ← select … choice of CID;` adds
//! `U` to every world, the next statement reads `U`, and so on. Programs are
//! also what make the repair-by-key reduction of Proposition 4.2 expressible:
//! the repaired relation is materialized once and can then be self-joined.

use relalg::Result;
use worldset::WorldSet;

use crate::{eval_named, Query};

/// One step of a program: evaluate `query` and bind the answer as `name`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Statement {
    /// Name under which the answer relation is added to every world.
    pub name: String,
    /// The query to evaluate.
    pub query: Query,
}

impl Statement {
    /// Build a statement.
    pub fn new(name: &str, query: Query) -> Statement {
        Statement {
            name: name.to_string(),
            query,
        }
    }
}

/// A sequence of statements evaluated left to right.
pub type Program = Vec<Statement>;

/// Run a program: after each statement the world-set gains one relation.
pub fn eval_program(program: &Program, ws: &WorldSet) -> Result<WorldSet> {
    let mut cur = ws.clone();
    for stmt in program {
        cur = eval_named(&stmt.query, &cur, &stmt.name)?;
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::{attrs, Pred, Relation};

    #[test]
    fn program_threads_views() {
        let flights = Relation::table(
            &["Dep", "Arr"],
            &[&["FRA", "BCN"], &["FRA", "ATL"], &["PAR", "ATL"]],
        );
        let ws = WorldSet::single(vec![("Flights", flights)]);
        let program = vec![
            Statement::new("ByDep", Query::rel("Flights").choice(attrs(&["Dep"]))),
            Statement::new(
                "CertArr",
                Query::rel("ByDep").project(attrs(&["Arr"])).cert(),
            ),
        ];
        let out = eval_program(&program, &ws).unwrap();
        assert_eq!(out.rel_names(), ["Flights", "ByDep", "CertArr"]);
        assert_eq!(out.len(), 2); // FRA world, PAR world
        for w in out.iter() {
            assert_eq!(w.last(), &Relation::table(&["Arr"], &[&["ATL"]]));
        }
    }

    #[test]
    fn later_statements_can_self_join_views() {
        let r = Relation::table(&["K", "V"], &[&[1i64, 10], &[1, 11]]);
        let ws = WorldSet::single(vec![("R", r)]);
        let program = vec![
            Statement::new("Fixed", Query::rel("R").repair_by_key(attrs(&["K"]))),
            // Self-join of the materialized repair: pairs only identical
            // choices because Fixed is now a base relation per world.
            Statement::new(
                "Pairs",
                Query::rel("Fixed")
                    .rename(vec![("K".into(), "K2".into()), ("V".into(), "V2".into())])
                    .product(Query::rel("Fixed")),
            ),
        ];
        let out = eval_program(&program, &ws).unwrap();
        assert_eq!(out.len(), 2);
        for w in out.iter() {
            // Each world pairs its own single repair tuple with itself.
            assert_eq!(w.last().len(), 1);
            let t = w.last().iter().next().unwrap();
            assert_eq!(t[1], t[3]); // V2 == V within the same world
        }
    }

    #[test]
    fn empty_program_is_identity() {
        let ws = WorldSet::single(vec![("R", Relation::table(&["A"], &[&[1i64]]))]);
        assert_eq!(eval_program(&vec![], &ws).unwrap(), ws);
    }

    #[test]
    fn statement_errors_propagate() {
        let ws = WorldSet::single(vec![("R", Relation::table(&["A"], &[&[1i64]]))]);
        let program = vec![Statement::new(
            "Bad",
            Query::rel("R").select(Pred::eq_const("Z", 1)),
        )];
        assert!(eval_program(&program, &ws).is_err());
    }
}
