//! **World-set Algebra** — the primary contribution of *"From Complete to
//! Incomplete Information and Back"* (Antova, Koch, Olteanu; SIGMOD 2007).
//!
//! World-set Algebra (WSA) extends relational algebra with operators that
//! *split* worlds (`choice-of` `χ_U`, and the `repair-by-key` extension) and
//! operators that *merge* information across worlds (`poss`, `cert`, and the
//! grouping variants `pγ^V_U` / `cγ^V_U`). Its semantics (Figure 3 of the
//! paper) is compositional: a query maps a world-set over schema
//! `⟨R₁,…,R_k⟩` to a world-set over `⟨R₁,…,R_{k+1}⟩`, where `R_{k+1}` is the
//! answer to the query in each world.
//!
//! This crate provides:
//!
//! * the query AST ([`Query`]) and sequential [`Program`]s (queries that
//!   materialize views consumed by later queries, as in the Section-2
//!   walk-throughs);
//! * the reference possible-worlds semantics ([`eval`], [`eval_named`]);
//! * static **typing** of queries by world-set cardinality (Section 4.1's
//!   `1↦1`, `1↦m`, `m↦1`, `m↦m`) and schema inference ([`typing`]);
//! * **genericity** checking infrastructure (Definition 4.4,
//!   Proposition 4.5);
//! * the **repair-by-key** extension with the Proposition-4.2
//!   3-colorability reduction ([`repair`]).

mod ast;
mod display;
pub mod factorized;
mod genericity;
mod program;
pub mod repair;
mod semantics;
pub mod typing;

pub use ast::Query;
pub use display::render_tree;
pub use factorized::{
    eval_factorized, eval_named_routed, eval_planned, implicit_world_estimate,
    implicit_world_estimate_with, plan_query, plan_with, should_factorize, RepCard, RepPlan,
};
pub use genericity::{check_generic, query_constants};
pub use program::{eval_program, Program, Statement};
pub use semantics::{eval, eval_named};
