#!/usr/bin/env python3
"""Bench-regression gate: re-run the bench suite and compare against the
committed baseline.

Runs `scripts/bench_dump.sh` into a temporary file and compares every
benchmark's mean against the committed `BENCH_core.json`, failing (exit 1)
when any benchmark slowed down by more than the tolerance (default 25%,
see EXPERIMENTS.md "Bench-regression gate"). Benchmarks present on only
one side are reported but never fail the gate (new benches appear, old
ones get retired). A regression must *reproduce* to fail: when the first
pass finds offenders, their bench targets are re-run once and each
offender keeps the better (minimum) of its two means — a real slowdown
survives both runs, a load spike on the shared container does not
(`--retries` controls the re-run count; 0 disables). Stdlib-only by
design — the container has no package index.

Usage:
    scripts/bench_check.py                         # full suite vs BENCH_core.json
    scripts/bench_check.py --targets worldset_ops parallel_scaling
    scripts/bench_check.py --current some.json     # skip the bench run
    scripts/bench_check.py --tolerance 0.25 --min-ns 0
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_benchmarks(path):
    """Map benchmark id -> mean_ns from a BENCH_core.json-shaped file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for entry in doc.get("benchmarks", []):
        out[entry["id"]] = float(entry["mean_ns"])
    return out


def run_benches(targets):
    """Run scripts/bench_dump.sh into a temp file; return the parsed means."""
    fd, tmp = tempfile.mkstemp(prefix="bench_current_", suffix=".json")
    os.close(fd)
    try:
        env = dict(os.environ, BENCH_OUT=tmp)
        cmd = [os.path.join(REPO_ROOT, "scripts", "bench_dump.sh"), *targets]
        subprocess.run(cmd, check=True, cwd=REPO_ROOT, env=env)
        return load_benchmarks(tmp)
    finally:
        os.unlink(tmp)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "BENCH_core.json"),
        help="committed baseline JSON (default: BENCH_core.json)",
    )
    ap.add_argument(
        "--current",
        default=None,
        help="pre-recorded current-run JSON; omit to run the benches now",
    )
    ap.add_argument(
        "--targets",
        nargs="*",
        default=[],
        help="bench targets forwarded to bench_dump.sh (default: all)",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_TOLERANCE", "0.25")),
        help="allowed fractional slowdown before failing (default 0.25 = 25%%)",
    )
    ap.add_argument(
        "--min-ns",
        type=float,
        default=float(os.environ.get("BENCH_MIN_NS", "0")),
        help="ignore benchmarks whose baseline mean is below this many ns",
    )
    ap.add_argument(
        "--retries",
        type=int,
        default=int(os.environ.get("BENCH_RETRIES", "1")),
        help="re-run offenders this many times, keeping each one's best "
        "mean; a regression must survive every run to fail (default 1, "
        "0 disables; ignored with --current)",
    )
    args = ap.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = (
        load_benchmarks(args.current) if args.current else run_benches(args.targets)
    )

    def compare(quiet=False):
        regressions = []
        improvements = 0
        compared = 0
        for bench_id in sorted(baseline):
            if bench_id not in current:
                if not quiet:
                    print(f"  [skip] {bench_id}: missing from current run")
                continue
            base = baseline[bench_id]
            if base < args.min_ns:
                continue
            now = current[bench_id]
            compared += 1
            ratio = now / base if base > 0 else float("inf")
            if ratio > 1.0 + args.tolerance:
                regressions.append((bench_id, base, now, ratio))
            elif ratio < 1.0:
                improvements += 1
        return regressions, improvements, compared

    regressions, improvements, compared = compare()
    retries_left = args.retries if not args.current else 0
    while regressions and retries_left > 0:
        retries_left -= 1
        names = ", ".join(bench_id for bench_id, _, _, _ in regressions)
        print(f"\n  [retry] re-running to confirm: {names}")
        rerun = run_benches(args.targets)
        for bench_id in rerun:
            if bench_id in current:
                current[bench_id] = min(current[bench_id], rerun[bench_id])
            else:
                current[bench_id] = rerun[bench_id]
        regressions, improvements, compared = compare(quiet=True)
    for bench_id in sorted(set(current) - set(baseline)):
        print(f"  [new]  {bench_id}: {current[bench_id]:.0f} ns (no baseline)")

    print(
        f"\ncompared {compared} benchmarks against {os.path.basename(args.baseline)}"
        f" (tolerance +{args.tolerance:.0%}); {improvements} improved"
    )
    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond tolerance:")
        for bench_id, base, now, ratio in regressions:
            print(
                f"  {bench_id}: {base:.0f} ns -> {now:.0f} ns"
                f" ({(ratio - 1.0):+.0%})"
            )
        return 1
    print("OK: no benchmark regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
