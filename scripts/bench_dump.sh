#!/usr/bin/env bash
# Run the Criterion benches and dump the results to BENCH_core.json so that
# perf can be tracked across PRs.
#
# Usage:
#   scripts/bench_dump.sh                 # all benches -> BENCH_core.json
#   scripts/bench_dump.sh worldset_ops    # one bench target
#
# The criterion shim (crates/shims/criterion) appends one JSON object per
# benchmark to $BENCH_JSON; this script wraps those lines into a single
# JSON document with run metadata.

set -euo pipefail
cd "$(dirname "$0")/.."

out="${BENCH_OUT:-BENCH_core.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

targets=("$@")
if [ ${#targets[@]} -eq 0 ]; then
    targets=(translation rewrite_gain rewrite_pipeline division repair translation_size worldset_ops tuple_layout wide_scan parallel_scaling columnar_exec factorized_worlds mixed_plans concurrent_sessions durability)
fi

for t in "${targets[@]}"; do
    echo "== bench: $t =="
    BENCH_JSON="$raw" cargo bench -p bench --bench "$t"
done

{
    echo '{'
    echo "  \"recorded_at\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"git_rev\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
    echo "  \"host\": \"$(uname -sm)\","
    echo '  "benchmarks": ['
    # Join the JSON-lines with commas.
    sed '$!s/$/,/' "$raw" | sed 's/^/    /'
    echo '  ]'
    echo '}'
} > "$out"

echo "wrote $(grep -c mean_ns "$out") benchmark entries to $out"
