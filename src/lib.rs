//! # world-set-db
//!
//! A faithful, executable reproduction of *"From Complete to Incomplete
//! Information and Back"* (Antova, Koch, Olteanu — SIGMOD 2007): **World-set
//! Algebra** and **I-SQL**, a query language for sets of possible worlds
//! that is conservative over relational algebra.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`relalg`] — set-semantics relational algebra (σ π δ × ∪ ∩ − ⋈ ÷ and
//!   the padded outer join `=⊲⊳` of Remark 5.5).
//! * [`worldset`] — the possible-worlds data model and world-set
//!   isomorphism.
//! * [`wsa`] — World-set Algebra: syntax, the Figure-3 semantics, operator
//!   typing, genericity, and the repair-by-key extension.
//! * [`wsa_rewrite`] — the Figure-7 equivalences and the logical optimizer
//!   (reproducing the Figure-8/9 rewrites).
//! * [`wsa_inlined`] — inlined representations (Definition 5.1) and both
//!   WSA-to-relational translations (Figure 6 and Section 5.3).
//! * [`isql`] — the I-SQL surface language: parser, compiler to WSA, a
//!   direct world-set interpreter with aggregation and DML, and the shared
//!   multi-session [`isql::Engine`] with its threaded TCP front-end
//!   ([`isql::server`]).
//! * [`uldb`] — a minimal ULDB/TriQL baseline used to reproduce the
//!   Remark-4.6 non-genericity counterexample.
//! * [`datagen`] — seeded workload generators for tests, examples and
//!   benchmarks.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use isql;
pub use relalg;
pub use uldb;
pub use worldset;
pub use wsa;
pub use wsa_inlined;
pub use wsa_rewrite;

pub use datagen;

/// Commonly used items, importable as `use world_set_db::prelude::*`.
pub mod prelude {
    pub use isql::{Engine, ExecOutcome, Session, SessionConfig};
    pub use relalg::{attr, attrs, Attr, Catalog, Expr, Pred, Relation, Schema, Value};
    pub use worldset::{World, WorldSet};
    pub use wsa::{eval, Query};
    pub use wsa_inlined::{translate_complete, translate_opt_complete, InlinedRep};
    pub use wsa_rewrite::optimize;
}
