//! An interactive I-SQL shell over a possible-worlds database.
//!
//! ```text
//! cargo run --bin isql_repl
//! isql> load flights
//! isql> select certain Arr from Flights choice of Dep;
//! isql> \worlds
//! ```
//!
//! Statements end with `;`. Meta-commands: `\worlds` prints the current
//! world-set, `\tables` lists relations, `\load <demo>` loads a demo
//! dataset (`flights`, `company`, `census`, `lineitem`), `\quit` exits.

use std::io::{self, BufRead, Write};

use isql::{ExecOutcome, Session};

fn main() {
    let mut session = Session::new();
    let stdin = io::stdin();
    let mut buffer = String::new();

    println!("I-SQL shell — SQL for incomplete information (SIGMOD 2007).");
    println!("End statements with ';'. Try: \\load flights  then");
    println!("  select certain Arr from Flights choice of Dep;");
    println!("Meta: \\worlds \\tables \\load <demo> \\csv <name> <path> \\explain <q> \\quit");

    loop {
        if buffer.is_empty() {
            print!("isql> ");
        } else {
            print!("  ... ");
        }
        io::stdout().flush().ok();

        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();

        // Meta-commands act immediately.
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match handle_meta(trimmed, &mut session) {
                MetaResult::Continue => continue,
                MetaResult::Quit => break,
            }
        }

        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let script = std::mem::take(&mut buffer);
        match session.execute(&script) {
            Ok(outcomes) => {
                for outcome in outcomes {
                    report(&outcome, &session);
                }
            }
            Err(e) => eprintln!("{e}"),
        }
    }
    println!("bye.");
}

enum MetaResult {
    Continue,
    Quit,
}

fn handle_meta(cmd: &str, session: &mut Session) -> MetaResult {
    let mut parts = cmd.split_whitespace();
    match parts.next() {
        Some("\\quit") | Some("\\q") => return MetaResult::Quit,
        Some("\\worlds") => {
            let ws = session.world_set();
            println!("{} world(s):", ws.len());
            print!("{}", ws.render());
        }
        Some("\\tables") => {
            for name in session.world_set().rel_names() {
                println!("  {name}");
            }
        }
        Some("\\explain") => {
            let rest: String = parts.collect::<Vec<_>>().join(" ");
            match session.explain(&rest) {
                Ok(e) => print!("{}", e.render()),
                Err(e) => eprintln!("{e}"),
            }
        }
        Some("\\csv") => {
            let (name, path) = (parts.next(), parts.next());
            match (name, path) {
                (Some(name), Some(path)) => match std::fs::read_to_string(path) {
                    Ok(text) => match relalg::relation_from_csv(&text) {
                        Ok(rel) => load(session, name, rel),
                        Err(e) => eprintln!("{e}"),
                    },
                    Err(e) => eprintln!("cannot read {path}: {e}"),
                },
                _ => eprintln!("usage: \\csv <name> <path>"),
            }
        }
        Some("\\load") => match parts.next() {
            Some("flights") => {
                load(session, "Flights", datagen::flights(1, 5, 8, 3));
                load(session, "Hotels", datagen::hotels(1, 10, 8));
            }
            Some("company") => {
                let (ce, es) = datagen::company_skills(1, 3);
                load(session, "Company_Emp", ce);
                load(session, "Emp_Skills", es);
            }
            Some("census") => load(session, "Census", datagen::census(1, 8, 3)),
            Some("lineitem") => load(session, "Lineitem", datagen::lineitem(1, 200, 3, 4)),
            other => eprintln!("unknown dataset {other:?}"),
        },
        other => eprintln!("unknown meta-command {other:?}"),
    }
    MetaResult::Continue
}

fn load(session: &mut Session, name: &str, rel: relalg::Relation) {
    match session.register(name, rel) {
        Ok(()) => println!("loaded {name}"),
        Err(e) => eprintln!("{e}"),
    }
}

fn report(outcome: &ExecOutcome, session: &Session) {
    match outcome {
        ExecOutcome::Rows { name, answers } => {
            println!(
                "{name}: {} distinct answer(s) across {} world(s)",
                answers.len(),
                session.world_set().len()
            );
            for (i, rel) in answers.iter().enumerate().take(8) {
                print!("{}", rel.to_table_string(&format!("{name}[{}]", i + 1)));
            }
            if answers.len() > 8 {
                println!("… ({} more)", answers.len() - 8);
            }
        }
        ExecOutcome::ViewCreated { name, worlds } => {
            println!("view {name} materialized; world-set now has {worlds} world(s)");
        }
        ExecOutcome::Dml { applied } => {
            if *applied {
                println!("ok");
            } else {
                println!("rejected: constraint violated in some world — discarded in all");
            }
        }
    }
}
