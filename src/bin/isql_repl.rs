//! An interactive I-SQL shell over a possible-worlds database.
//!
//! ```text
//! cargo run --bin isql_repl
//! isql> load flights
//! isql> select certain Arr from Flights choice of Dep;
//! isql> \worlds
//! ```
//!
//! Statements end with `;`. Meta-commands: `\worlds` prints the current
//! world-set, `\tables` lists relations, `\load <demo>` loads a demo
//! dataset (`flights`, `company`, `census`, `lineitem`), `\quit` exits.
//!
//! With `--serve <addr>` the binary starts the threaded TCP server
//! (`isql::server`) on the given address instead of the shell: each
//! connection gets its own snapshot-isolated session on one shared
//! [`Engine`]. I-SQL has no `create table`, so seed the served catalog
//! with `--load <demo>` (repeatable — same datasets as the shell's
//! `\load`). Connect with the `isql::server::Client` helper or any
//! line-oriented TCP tool.
//!
//! With `--data-dir <path>` (either mode) the engine is durable: every
//! committed statement is WAL-logged and fsynced before it is
//! acknowledged, and on startup the catalog is recovered from the latest
//! snapshot plus the WAL tail. `--load` seeds the catalog only when the
//! recovered directory is empty, so a restart keeps the recovered data.

use std::io::{self, BufRead, Write};

use isql::server::render_outcome;
use isql::{Engine, ExecOutcome, Session};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let data_dir = args
        .iter()
        .position(|a| a == "--data-dir")
        .map(|i| match args.get(i + 1) {
            Some(path) => path.clone(),
            None => {
                eprintln!(
                    "usage: isql_repl [--data-dir <path>] [--serve <addr> [--load <demo>]...]"
                );
                std::process::exit(2);
            }
        });
    if let Some(i) = args.iter().position(|a| a == "--serve") {
        let Some(addr) = args.get(i + 1) else {
            eprintln!("usage: isql_repl [--data-dir <path>] [--serve <addr> [--load <demo>]...]");
            std::process::exit(2);
        };
        let demos: Vec<&str> = args
            .iter()
            .enumerate()
            .filter(|(j, a)| *a == "--load" && args.get(j + 1).is_some())
            .map(|(j, _)| args[j + 1].as_str())
            .collect();
        serve(addr, &demos, data_dir.as_deref());
        return;
    }

    let engine = open_engine(data_dir.as_deref());
    let mut session = engine.session();
    let stdin = io::stdin();
    let mut buffer = String::new();

    println!("I-SQL shell — SQL for incomplete information (SIGMOD 2007).");
    println!("End statements with ';'. Try: \\load flights  then");
    println!("  select certain Arr from Flights choice of Dep;");
    println!("Meta: \\worlds \\tables \\load <demo> \\csv <name> <path> \\explain <q> \\quit");

    loop {
        if buffer.is_empty() {
            print!("isql> ");
        } else {
            print!("  ... ");
        }
        io::stdout().flush().ok();

        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();

        // Meta-commands act immediately.
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match handle_meta(trimmed, &mut session) {
                MetaResult::Continue => continue,
                MetaResult::Quit => break,
            }
        }

        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let script = std::mem::take(&mut buffer);
        match session.execute(&script) {
            Ok(outcomes) => {
                for outcome in outcomes {
                    report(&outcome, &session);
                }
            }
            Err(e) => eprintln!("{e}"),
        }
    }
    if let Err(e) = engine.checkpoint() {
        eprintln!("checkpoint on exit failed: {e}");
    }
    println!("bye.");
}

/// Open the engine: durable under `--data-dir`, in-memory otherwise.
fn open_engine(data_dir: Option<&str>) -> Engine {
    match data_dir {
        Some(dir) => match Engine::open(dir) {
            Ok(engine) => {
                println!("recovered data dir {dir}");
                engine
            }
            Err(e) => {
                eprintln!("cannot open data dir {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => Engine::new(),
    }
}

/// Start the TCP server on `addr`, seeded with the named demo datasets,
/// and block until it is shut down.
fn serve(addr: &str, demos: &[&str], data_dir: Option<&str>) {
    let engine = open_engine(data_dir);
    // A recovered catalog keeps its data; `--load` only seeds an empty one.
    if engine.snapshot().world_set().rel_names().is_empty() {
        let mut admin = engine.session();
        for demo in demos {
            if !load_demo(&mut admin, demo) {
                eprintln!("unknown dataset {demo:?} (try flights, company, census, lineitem)");
                std::process::exit(2);
            }
        }
    } else if !demos.is_empty() {
        println!("catalog recovered from data dir; ignoring --load");
    }
    match isql::server::serve(engine, addr) {
        Ok(handle) => {
            println!("isql server listening on {}", handle.addr());
            handle.join();
        }
        Err(e) => {
            eprintln!("cannot serve on {addr}: {e}");
            std::process::exit(1);
        }
    }
}

enum MetaResult {
    Continue,
    Quit,
}

fn handle_meta(cmd: &str, session: &mut Session) -> MetaResult {
    let mut parts = cmd.split_whitespace();
    match parts.next() {
        Some("\\quit") | Some("\\q") => return MetaResult::Quit,
        Some("\\worlds") => {
            let ws = session.world_set();
            println!("{} world(s):", ws.len());
            print!("{}", ws.render());
        }
        Some("\\tables") => {
            for name in session.world_set().rel_names() {
                println!("  {name}");
            }
        }
        Some("\\explain") => {
            let rest: String = parts.collect::<Vec<_>>().join(" ");
            match session.explain(&rest) {
                Ok(e) => print!("{}", e.render()),
                Err(e) => eprintln!("{e}"),
            }
        }
        Some("\\csv") => {
            let (name, path) = (parts.next(), parts.next());
            match (name, path) {
                (Some(name), Some(path)) => match std::fs::read_to_string(path) {
                    Ok(text) => match relalg::relation_from_csv(&text) {
                        Ok(rel) => load(session, name, rel),
                        Err(e) => eprintln!("{e}"),
                    },
                    Err(e) => eprintln!("cannot read {path}: {e}"),
                },
                _ => eprintln!("usage: \\csv <name> <path>"),
            }
        }
        Some("\\load") => match parts.next() {
            Some(demo) if load_demo(session, demo) => {}
            other => eprintln!("unknown dataset {other:?}"),
        },
        other => eprintln!("unknown meta-command {other:?}"),
    }
    MetaResult::Continue
}

/// Register one of the named demo datasets; `false` if the name is
/// unknown. Shared by the shell's `\load` and the server's `--load`.
fn load_demo(session: &mut Session, demo: &str) -> bool {
    match demo {
        "flights" => {
            load(session, "Flights", datagen::flights(1, 5, 8, 3));
            load(session, "Hotels", datagen::hotels(1, 10, 8));
        }
        "company" => {
            let (ce, es) = datagen::company_skills(1, 3);
            load(session, "Company_Emp", ce);
            load(session, "Emp_Skills", es);
        }
        "census" => load(session, "Census", datagen::census(1, 8, 3)),
        "lineitem" => load(session, "Lineitem", datagen::lineitem(1, 200, 3, 4)),
        _ => return false,
    }
    true
}

fn load(session: &mut Session, name: &str, rel: relalg::Relation) {
    match session.register(name, rel) {
        Ok(()) => println!("loaded {name}"),
        Err(e) => eprintln!("{e}"),
    }
}

fn report(outcome: &ExecOutcome, session: &Session) {
    print!("{}", render_outcome(outcome, session.world_set().len()));
}
