//! The TPC-H-style what-if revenue query of Section 2 on synthetic data:
//! which years would lose more than a revenue threshold if the products of
//! some package size (quantity) were no longer available?
//!
//! Hypothetical alternatives (year × missing quantity) become possible
//! worlds via `choice of`; aggregation runs per world; `possible` collects
//! the years over the worlds.
//!
//! Run with: `cargo run --example tpch_whatif`

use world_set_db::prelude::*;

fn main() {
    // Synthetic Lineitem(Product, Quantity, Price, Year): 400 line items,
    // 3 years, 4 package sizes (see DESIGN.md on the TPC-H substitution).
    let lineitem = datagen::lineitem(42, 400, 3, 4);
    println!(
        "Lineitem: {} rows over {} years",
        lineitem.len(),
        lineitem
            .distinct_values(&relalg::attrs(&["Year"]))
            .unwrap()
            .len()
    );

    let mut s = Session::new();
    s.register("Lineitem", lineitem).unwrap();

    // One world per (year, missing quantity); revenue per world.
    s.execute(
        "create view YearQuantity as \
         select A.Year, sum(A.Price) as Revenue \
         from (select * from Lineitem choice of Year) as A \
         where Quantity not in (select * from Lineitem choice of Quantity) \
         group by A.Year;",
    )
    .unwrap();
    println!(
        "YearQuantity view created: {} hypothetical worlds",
        s.world_set().len()
    );
    for (i, r) in s
        .answers("YearQuantity")
        .unwrap()
        .iter()
        .enumerate()
        .take(6)
    {
        print!("{}", r.to_table_string(&format!("world {}", i + 1)));
    }

    // Years losing more than the threshold in some hypothetical world.
    let threshold = 50_000;
    let out = s
        .execute(&format!(
            "select possible Year from YearQuantity as Y \
             where (select sum(Price) from Lineitem where Lineitem.Year = Y.Year) \
                   - Y.Revenue > {threshold};"
        ))
        .unwrap();
    let isql::ExecOutcome::Rows { answers, .. } = &out[0] else {
        unreachable!()
    };
    println!(
        "\nyears with a possible loss over {threshold}:\n{}",
        answers[0].to_table_string("Result")
    );
}
