//! Consistent views of inconsistent data (Section 2): a census relation
//! with mistyped social security numbers violates the key SSN → rest;
//! `repair by key` materializes all consistent repairs as possible worlds,
//! and `certain` queries return the *consistent answers* across them.
//!
//! Run with: `cargo run --example census_cleaning`

use world_set_db::prelude::*;

fn main() {
    // 8 clean rows plus 3 SSN collisions ⇒ 2³ = 8 possible repairs.
    let census = datagen::census(7, 8, 3);
    println!("{}", census.to_table_string("Census"));

    let mut s = Session::new();
    s.register("Census", census).unwrap();

    s.execute("create view Clean as select * from Census repair by key SSN;")
        .unwrap();
    println!(
        "repair by key SSN ⇒ {} possible repairs (worlds)\n",
        s.world_set().len()
    );
    for (i, r) in s.answers("Clean").unwrap().iter().enumerate().take(2) {
        print!("{}", r.to_table_string(&format!("repair {}", i + 1)));
        println!();
    }

    // Certain answers: names that survive in *every* repair.
    let out = s.execute("select certain SSN, Name from Clean;").unwrap();
    let isql::ExecOutcome::Rows { answers, .. } = &out[0] else {
        unreachable!()
    };
    println!(
        "consistent (certain) SSN/Name pairs:\n{}",
        answers[0].to_table_string("Certain")
    );

    // Possible answers: every value some repair admits.
    let out = s.execute("select possible SSN, Name from Clean;").unwrap();
    let isql::ExecOutcome::Rows { answers, .. } = &out[0] else {
        unreachable!()
    };
    println!(
        "possible SSN/Name pairs:\n{}",
        answers[0].to_table_string("Possible")
    );
}
