//! Trip planning (Section 2, Figure 2, Examples 5.6/5.8 and 6.1/6.2):
//! common destinations, the translation pipeline, and the optimizer.
//!
//! Run with: `cargo run --example trip_planning`

use relalg::{attrs, Pred};
use world_set_db::prelude::*;
use wsa_rewrite::{optimize_traced, RewriteCtx};

fn main() {
    let flights = Relation::table(
        &["Dep", "Arr"],
        &[
            &["FRA", "BCN"],
            &["FRA", "ATL"],
            &["PAR", "ATL"],
            &["PAR", "BCN"],
            &["PHL", "ATL"],
        ],
    );
    let hotels = Relation::table(
        &["Name", "City"],
        &[
            &["Hilton", "ATL"],
            &["Ritz", "BCN"],
            &["Ibis", "ATL"],
            &["Sofitel", "PAR"],
        ],
    );

    // --- Example 5.6 / 5.8: cert(π_Arr(χ_Dep(HFlights))) ---
    let q = Query::rel("HFlights")
        .choice(attrs(&["Dep"]))
        .project(attrs(&["Arr"]))
        .cert();
    println!("trip query (WSA):  {q}\n");

    let ws = WorldSet::single(vec![("HFlights", flights.clone())]);
    let direct = wsa::eval_named(&q, &ws, "Common").unwrap();
    println!(
        "direct semantics:  {:?}",
        direct.iter().next().unwrap().last()
    );

    let base = |n: &str| match n {
        "HFlights" => Some(flights.schema().clone()),
        "Hotels" => Some(hotels.schema().clone()),
        _ => None,
    };
    let names = vec!["HFlights".to_string()];

    // The general Figure-6 translation (Example 5.6).
    let general = translate_complete(&q, &base, &names).unwrap();
    println!(
        "\nExample 5.6 — general translation ({} ops):",
        general.dag_size()
    );
    println!("  {general}");

    // The Section-5.3 optimized translation, simplified (Example 5.8).
    let opt = translate_opt_complete(&q, &base).unwrap();
    let simplified = relalg::simplify(&opt, &base).unwrap();
    println!(
        "\nExample 5.8 — optimized translation ({} ops):",
        simplified.dag_size()
    );
    println!("  {simplified}");

    let mut catalog = Catalog::new();
    catalog.put("HFlights", flights.clone());
    println!("  evaluates to {:?}", catalog.eval(&simplified).unwrap());

    // --- Examples 6.1/6.2: the Figure-8/9 rewrites on flights × hotels ---
    let q1 = Query::rel("HFlights")
        .product(Query::rel("Hotels"))
        .choice(attrs(&["Dep", "City"]))
        .poss_group(attrs(&["Dep"]), attrs(&["Dep", "Arr", "Name", "City"]))
        .select(Pred::eq_attr("Arr", "City"))
        .project(attrs(&["City"]))
        .cert();
    let ctx = RewriteCtx::new(&base);
    let (q1_prime, trace) = optimize_traced(&q1, &ctx);
    println!("\nExample 6.1 — q1 rewritten (Figure 8):");
    print!("{}", trace.render(&q1));
    println!("  q1' = {q1_prime}");

    let q2 = Query::rel("HFlights")
        .product(Query::rel("Hotels"))
        .choice(attrs(&["Dep", "City"]))
        .poss_group(attrs(&["Dep"]), attrs(&["Dep", "Arr", "Name", "City"]))
        .select(Pred::eq_attr("Arr", "City"))
        .project(attrs(&["City"]))
        .poss();
    let (q2_prime, trace) = optimize_traced(&q2, &ctx);
    println!("\nExample 6.2 — q2 rewritten (Figure 9):");
    print!("{}", trace.render(&q2));
    println!("  q2' = {q2_prime}");

    // Check the rewritten plans against the originals.
    let ws2 = WorldSet::single(vec![
        ("HFlights", flights.clone()),
        ("Hotels", hotels.clone()),
    ]);
    for (orig, opt) in [(&q1, &q1_prime), (&q2, &q2_prime)] {
        let a = wsa::eval_named(orig, &ws2, "A").unwrap();
        let b = wsa::eval_named(opt, &ws2, "A").unwrap();
        assert_eq!(
            a.iter().next().unwrap().last(),
            b.iter().next().unwrap().last()
        );
    }
    println!("\nrewritten plans verified equivalent on the data ✓");
}
