//! The Section-2 business decision-support scenario, step by step.
//!
//! "Suppose I consider buying one company to gain the competency 'Web',
//! but one key employee might leave — which targets guarantee the skill?"
//!
//! Each step materializes a view over the growing world-set, printing the
//! same tables the paper shows (U₁/U₂, V₁.₁…V₂.₃, W, Result).
//!
//! Run with: `cargo run --example acquisition`

use world_set_db::prelude::*;

fn main() {
    let mut s = Session::new();
    s.register(
        "Company_Emp",
        Relation::table(
            &["CID", "EID"],
            &[
                &["ACME", "e1"],
                &["ACME", "e2"],
                &["HAL", "e3"],
                &["HAL", "e4"],
                &["HAL", "e5"],
            ],
        ),
    )
    .unwrap();
    s.register(
        "Emp_Skills",
        Relation::table(
            &["EID", "Skill"],
            &[
                &["e1", "Web"],
                &["e2", "Web"],
                &["e3", "Java"],
                &["e3", "Web"],
                &["e4", "SQL"],
                &["e5", "Java"],
            ],
        ),
    )
    .unwrap();

    println!("== Step 1: choose exactly one company to buy ==");
    s.execute("create view U as select * from Company_Emp choice of CID;")
        .unwrap();
    show(&s, "U");

    println!("== Step 2: one (key) employee leaves that company ==");
    s.execute(
        "create view V as select R1.CID, R1.EID \
         from Company_Emp R1, (select * from U choice of EID) R2 \
         where R1.CID = R2.CID and R1.EID != R2.EID;",
    )
    .unwrap();
    show(&s, "V");

    println!("== Step 3: which skills do I gain for certain? ==");
    s.execute(
        "create view W as select certain CID, Skill from V, Emp_Skills \
         where V.EID = Emp_Skills.EID group worlds by (select CID from V);",
    )
    .unwrap();
    show(&s, "W");

    println!("== Step 4: possible targets that guarantee 'Web' ==");
    let out = s
        .execute("select possible CID from W where Skill = 'Web';")
        .unwrap();
    let isql::ExecOutcome::Rows { answers, .. } = &out[0] else {
        unreachable!()
    };
    for r in answers {
        print!("{}", r.to_table_string("Result"));
    }
    println!(
        "\nworld-set now has {} worlds over relations {:?}",
        s.world_set().len(),
        s.world_set().rel_names()
    );
}

fn show(s: &Session, name: &str) {
    for (i, rel) in s.answers(name).unwrap().iter().enumerate() {
        print!("{}", rel.to_table_string(&format!("{name}[{}]", i + 1)));
    }
    println!("({} worlds)\n", s.world_set().len());
}
