//! Proposition 4.2: WSA with repair-by-key can express NP-hard guess-and-
//! check problems. This example decides graph 3-colorability by running a
//! two-statement WSA program: `repair-by-key` guesses a coloring per world,
//! `poss` checks whether some world has no monochromatic edge.
//!
//! Run with: `cargo run --example three_coloring`

use wsa::repair::{coloring_input, coloring_program, is_three_colorable, Graph};

fn main() {
    let cases: Vec<(&str, Graph)> = vec![
        ("triangle K3", Graph::complete(3)),
        ("clique K4", Graph::complete(4)),
        ("5-cycle C5", Graph::cycle(5)),
        ("wheel W5 (C5 + hub)", wheel(5)),
        (
            "Petersen-ish fragment",
            Graph::new(
                6,
                vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)],
            ),
        ),
    ];

    for (name, g) in cases {
        let worlds = 3usize.pow(g.n as u32);
        let colorable = is_three_colorable(&g).unwrap();
        println!(
            "{name:<24} n={:<2} |E|={:<2} worlds=3^{}={:<6} 3-colorable: {}",
            g.n,
            g.edges.len(),
            g.n,
            worlds,
            if colorable { "yes" } else { "no" }
        );
    }

    // Show the reduction's plumbing on the triangle.
    let g = Graph::complete(3);
    let (program, check) = coloring_program();
    println!("\nreduction program on K3:");
    for stmt in &program {
        println!("  {} ← {}", stmt.name, stmt.query);
    }
    println!("  check: {check}");
    let ws = coloring_input(&g);
    let after = wsa::eval_program(&program, &ws).unwrap();
    println!(
        "  after repair-by-key: {} worlds (all 3³ colorings of 3 nodes)",
        after.len()
    );
}

/// The wheel: a cycle plus a hub adjacent to every cycle node.
fn wheel(n: usize) -> Graph {
    let mut g = Graph::cycle(n);
    let hub = n;
    g.n += 1;
    for v in 0..n {
        g.edges.push((v, hub));
    }
    g
}
