//! Quickstart: incomplete information in five minutes.
//!
//! Build a complete database, split it into possible worlds with
//! `choice-of`, close the possible-worlds semantics with `certain`, and run
//! the same query through I-SQL, the WSA algebra, and the relational
//! translation.
//!
//! Run with: `cargo run --example quickstart`

use world_set_db::prelude::*;

fn main() {
    // A complete (one-world) database of daily flights.
    let flights = Relation::table(
        &["Dep", "Arr"],
        &[
            &["FRA", "BCN"],
            &["FRA", "ATL"],
            &["PAR", "ATL"],
            &["PAR", "BCN"],
            &["PHL", "ATL"],
        ],
    );
    println!("{}", flights.to_table_string("Flights"));

    // 1. I-SQL: where can a group from FRA/PAR/PHL meet on direct flights?
    let mut session = Session::new();
    session.register("Flights", flights.clone()).unwrap();
    let out = session
        .execute("select certain Arr from Flights choice of Dep;")
        .unwrap();
    let isql::ExecOutcome::Rows { answers, .. } = &out[0] else {
        unreachable!()
    };
    println!("I-SQL  : certain arrivals = {:?}", answers[0]);

    // 2. The same query in World-set Algebra, evaluated by the direct
    //    possible-worlds semantics (Figure 3 of the paper).
    let q = Query::rel("Flights")
        .choice(relalg::attrs(&["Dep"]))
        .project(relalg::attrs(&["Arr"]))
        .cert();
    println!("algebra: {q}");
    let ws = WorldSet::single(vec![("Flights", flights.clone())]);
    let result = wsa::eval_named(&q, &ws, "Meet").unwrap();
    if let Some(w) = result.iter().next() {
        println!("algebra: certain arrivals = {:?}", w.last());
    }

    // 3. Conservativity (Theorem 5.7): the same query as plain relational
    //    algebra over the ordinary database.
    let base = |n: &str| (n == "Flights").then(|| flights.schema().clone());
    let plan = translate_opt_complete(&q, &base).unwrap();
    let plan = relalg::simplify(&plan, &base).unwrap();
    println!("relational plan: {plan}");
    let mut catalog = Catalog::new();
    catalog.put("Flights", flights);
    println!("relational eval: {:?}", catalog.eval(&plan).unwrap());

    // 4. Peek at the worlds that choice-of created.
    let split = wsa::eval_named(
        &Query::rel("Flights").choice(relalg::attrs(&["Dep"])),
        &ws,
        "ByDep",
    )
    .unwrap();
    println!("\nchoice-of created {} worlds:", split.len());
    print!("{}", split.render());
}
